open Nt_base
open Nt_obs

let protocol_version = 5
let max_frame = 4 * 1024 * 1024
let max_header = 20

let frame payload = Printf.sprintf "%d\n%s" (String.length payload) payload

let prefix_for_error s =
  let n = min 20 (String.length s) in
  let p = String.sub s 0 n in
  if String.length s > n then p ^ "..." else p

module Reader = struct
  type t = { mutable acc : string }

  let create () = { acc = "" }
  let feed t s = if s <> "" then t.acc <- t.acc ^ s
  let buffered t = String.length t.acc

  let digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

  let next t =
    match String.index_opt t.acc '\n' with
    | None ->
        if String.length t.acc > max_header then
          Error
            (Printf.sprintf
               "frame header too long: no newline in first %d bytes (%S)"
               (String.length t.acc)
               (prefix_for_error t.acc))
        else Ok None
    | Some i -> (
        let hdr = String.sub t.acc 0 i in
        if not (digits hdr) then
          Error (Printf.sprintf "bad frame header %S" (prefix_for_error hdr))
        else
          match int_of_string_opt hdr with
          | None -> Error (Printf.sprintf "bad frame header %S" hdr)
          | Some len when len > max_frame ->
              Error
                (Printf.sprintf
                   "frame of %d bytes exceeds max_frame (%d bytes)" len
                   max_frame)
          | Some len ->
              let start = i + 1 in
              if String.length t.acc - start < len then Ok None
              else begin
                let payload = String.sub t.acc start len in
                t.acc <-
                  String.sub t.acc (start + len)
                    (String.length t.acc - start - len);
                Ok (Some payload)
              end)

  type eof = Clean | Torn of { buffered : int; expected : int option }

  let eof t =
    if t.acc = "" then Clean
    else
      let expected =
        match String.index_opt t.acc '\n' with
        | None -> None
        | Some i -> int_of_string_opt (String.sub t.acc 0 i)
      in
      Torn { buffered = String.length t.acc; expected }

  let describe_eof = function
    | Clean -> "clean shutdown at a frame boundary"
    | Torn { buffered; expected = Some len } ->
        Printf.sprintf
          "stream ended mid-frame: %d bytes buffered of a %d-byte payload"
          buffered len
    | Torn { buffered; expected = None } ->
        Printf.sprintf "stream ended mid-frame: %d header bytes buffered"
          buffered
end

type request =
  | Hello of { client : string }
  | Submit of { program : string; req : string option }
  | Status of Txn_id.t
  | Metrics
  | Subscribe
  | Ping
  | Dump
  | Quiesce
  | Shutdown

type txn_state =
  | Pending
  | Running
  | Committed of string
  | Aborted of string option

type server_status =
  | Fresh
  | Recovering of { replayed : int; total : int }
  | Recovered of { replayed : int; torn : bool }

type hist = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_p50 : int;
  h_p99 : int;
  h_p999 : int;
  h_buckets : (int * int) list;
}

let empty_hist =
  {
    h_count = 0;
    h_sum = 0;
    h_min = 0;
    h_max = 0;
    h_p50 = 0;
    h_p99 = 0;
    h_p999 = 0;
    h_buckets = [];
  }

(* One shard's counters, carried in Telemetry and Quiesced answers
   when the server runs sharded ([shards > 1] in its Welcome); empty
   on single-engine servers and pre-v5 peers. *)
type shard_row = {
  r_shard : int;
  r_submitted : int;
  r_committed : int;
  r_aborted : int;
  r_vetoed : int;
  r_live : int;
}

type telemetry = {
  seq : int;
  t_mono : float;
  interval_s : float;
  w_requests : int;
  w_submitted : int;
  w_committed : int;
  w_aborted : int;
  w_vetoed : int;
  w_orphans : int;
  w_alarms : int;
  w_latency : hist;
  o_live : int;
  o_doomed : int;
  o_conns : int;
  o_subscribers : int;
  c_submitted : int;
  c_committed : int;
  c_aborted : int;
  c_vetoed : int;
  c_alarms : int;
  sg_nodes : int;
  sg_edges : int;
  sg_reorders : int;
  hot : (string * int) list;
  stages : (string * hist) list;
  gc_pause : hist;
  gc_pct : float;
  per_shard : shard_row list;
}

type response =
  | Welcome of {
      server : string;
      version : string;
      backend : string;
      status : server_status;
      objects : (string * string) list;
      shards : int;  (** Worker domains; 1 on single-engine servers. *)
    }
  | Accepted of { txn : Txn_id.t; req : string option }
  | Rejected of { why : string; req : string option }
  | State of { txn : Txn_id.t; state : txn_state; req : string option }
  | Metrics_dump of Json.t
  | Telemetry of telemetry
  | Pong of {
      t_mono : float;
      live : int;
      doomed : int;
      conns : int;
      status : server_status;
    }
  | Dumped of { spans : int; dropped : int; jsonl : string; chrome : string }
  | Quiesced of {
      committed : int;
      aborted : int;
      vetoed : int;
      alarms : int;
      per_shard : shard_row list;
    }
  | Goodbye
  | Error_msg of string

(* --- encoding --- *)

let obj fields = Json.Obj fields
let str s = Json.Str s
let int n = Json.Int n
let txn t = str (Txn_id.to_string t)

let opt_req req fields =
  match req with None -> fields | Some r -> ("req", str r) :: fields

let request_to_json = function
  | Hello { client } -> obj [ ("type", str "hello"); ("client", str client) ]
  | Submit { program; req } ->
      obj (("type", str "submit") :: opt_req req [ ("program", str program) ])
  | Status t -> obj [ ("type", str "status"); ("txn", txn t) ]
  | Metrics -> obj [ ("type", str "metrics") ]
  | Subscribe -> obj [ ("type", str "subscribe") ]
  | Ping -> obj [ ("type", str "ping") ]
  | Dump -> obj [ ("type", str "dump") ]
  | Quiesce -> obj [ ("type", str "quiesce") ]
  | Shutdown -> obj [ ("type", str "shutdown") ]

let status_fields = function
  | Fresh -> [ ("status", str "fresh") ]
  | Recovering { replayed; total } ->
      [
        ("status", str "recovering");
        ("replayed", int replayed);
        ("total", int total);
      ]
  | Recovered { replayed; torn } ->
      [
        ("status", str "recovered");
        ("replayed", int replayed);
        ("torn", Json.Bool torn);
      ]

let state_fields = function
  | Pending -> [ ("state", str "pending") ]
  | Running -> [ ("state", str "running") ]
  | Committed v -> [ ("state", str "committed"); ("value", str v) ]
  | Aborted None -> [ ("state", str "aborted") ]
  | Aborted (Some why) -> [ ("state", str "aborted"); ("veto", str why) ]

let shard_row_to_json r =
  obj
    [
      ("shard", int r.r_shard);
      ("submitted", int r.r_submitted);
      ("committed", int r.r_committed);
      ("aborted", int r.r_aborted);
      ("vetoed", int r.r_vetoed);
      ("live", int r.r_live);
    ]

let per_shard_fields = function
  | [] -> []
  | rows -> [ ("shards", Json.Arr (List.map shard_row_to_json rows)) ]

let hist_to_json h =
  obj
    [
      ("count", int h.h_count);
      ("sum", int h.h_sum);
      ("min", int h.h_min);
      ("max", int h.h_max);
      ("p50", int h.h_p50);
      ("p99", int h.h_p99);
      ("p999", int h.h_p999);
      ( "buckets",
        Json.Arr
          (List.map (fun (i, n) -> Json.Arr [ int i; int n ]) h.h_buckets) );
    ]

let telemetry_to_json t =
  obj
    ([
      ("type", str "telemetry");
      ("seq", int t.seq);
      ("t", Json.Float t.t_mono);
      ("interval_s", Json.Float t.interval_s);
      ( "win",
        obj
          [
            ("requests", int t.w_requests);
            ("submitted", int t.w_submitted);
            ("committed", int t.w_committed);
            ("aborted", int t.w_aborted);
            ("vetoed", int t.w_vetoed);
            ("orphans", int t.w_orphans);
            ("alarms", int t.w_alarms);
            ("latency_us", hist_to_json t.w_latency);
          ] );
      ( "occ",
        obj
          [
            ("live", int t.o_live);
            ("doomed", int t.o_doomed);
            ("conns", int t.o_conns);
            ("subscribers", int t.o_subscribers);
          ] );
      ( "total",
        obj
          [
            ("submitted", int t.c_submitted);
            ("committed", int t.c_committed);
            ("aborted", int t.c_aborted);
            ("vetoed", int t.c_vetoed);
            ("alarms", int t.c_alarms);
          ] );
      ( "sg",
        obj
          [
            ("nodes", int t.sg_nodes);
            ("edges", int t.sg_edges);
            ("reorders", int t.sg_reorders);
          ] );
      ( "hot",
        Json.Arr
          (List.map (fun (x, w) -> Json.Arr [ str x; int w ]) t.hot) );
      ( "stages",
        obj (List.map (fun (s, h) -> (s, hist_to_json h)) t.stages) );
      ( "gc",
        obj
          [ ("pause_us", hist_to_json t.gc_pause); ("pct", Json.Float t.gc_pct) ]
      );
    ]
    @ per_shard_fields t.per_shard)

let response_to_json = function
  | Welcome { server; version; backend; status; objects; shards } ->
      obj
        ([
           ("type", str "welcome");
           ("server", str server);
           ("version", str version);
           ("protocol", int protocol_version);
           ("backend", str backend);
           ("shards", int shards);
         ]
        @ status_fields status
        @ [
            ( "objects",
              Json.Arr
                (List.map
                   (fun (name, decl) ->
                     obj [ ("name", str name); ("decl", str decl) ])
                   objects) );
          ])
  | Accepted { txn = t; req } ->
      obj (("type", str "accepted") :: opt_req req [ ("txn", txn t) ])
  | Rejected { why; req } ->
      obj (("type", str "rejected") :: opt_req req [ ("why", str why) ])
  | State { txn = t; state; req } ->
      obj
        (("type", str "state")
        :: opt_req req (("txn", txn t) :: state_fields state))
  | Metrics_dump j -> obj [ ("type", str "metrics"); ("metrics", j) ]
  | Telemetry t -> telemetry_to_json t
  | Pong { t_mono; live; doomed; conns; status } ->
      obj
        ([
           ("type", str "pong");
           ("t", Json.Float t_mono);
           ("live", int live);
           ("doomed", int doomed);
           ("conns", int conns);
         ]
        @ status_fields status)
  | Dumped { spans; dropped; jsonl; chrome } ->
      obj
        [
          ("type", str "dumped");
          ("spans", int spans);
          ("dropped", int dropped);
          ("jsonl", str jsonl);
          ("chrome", str chrome);
        ]
  | Quiesced { committed; aborted; vetoed; alarms; per_shard } ->
      obj
        ([
           ("type", str "quiesced");
           ("committed", int committed);
           ("aborted", int aborted);
           ("vetoed", int vetoed);
           ("alarms", int alarms);
         ]
        @ per_shard_fields per_shard)
  | Goodbye -> obj [ ("type", str "goodbye") ]
  | Error_msg why -> obj [ ("type", str "error"); ("why", str why) ]

(* --- decoding --- *)

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match Json.to_str_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let int_field name j =
  let* v = field name j in
  match Json.to_int_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %S: expected an integer" name)

let float_field name j =
  let* v = field name j in
  match v with
  | Json.Float f -> Ok f
  | Json.Int n -> Ok (float_of_int n)
  | _ -> Error (Printf.sprintf "field %S: expected a number" name)

let req_field j =
  match Json.member "req" j with
  | None -> Ok None
  | Some v -> (
      match Json.to_str_opt v with
      | Some r -> Ok (Some r)
      | None -> Error "field \"req\": expected a string")

let txn_field name j =
  let* s = str_field name j in
  match Txn_id.of_string s with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "field %S: bad transaction name %S" name s)

let request_of_json j =
  let* ty = str_field "type" j in
  match ty with
  | "hello" ->
      let* client = str_field "client" j in
      Ok (Hello { client })
  | "submit" ->
      let* program = str_field "program" j in
      let* req = req_field j in
      Ok (Submit { program; req })
  | "status" ->
      let* t = txn_field "txn" j in
      Ok (Status t)
  | "metrics" -> Ok Metrics
  | "subscribe" -> Ok Subscribe
  | "ping" -> Ok Ping
  | "dump" -> Ok Dump
  | "quiesce" -> Ok Quiesce
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown request type %S" other)

(* Absent on pre-durability servers: default [Fresh]. *)
let status_of_json j =
  match Json.member "status" j with
  | None -> Ok Fresh
  | Some v -> (
      match Json.to_str_opt v with
      | None -> Error "field \"status\": expected a string"
      | Some "fresh" -> Ok Fresh
      | Some "recovering" ->
          let* replayed = int_field "replayed" j in
          let* total = int_field "total" j in
          Ok (Recovering { replayed; total })
      | Some "recovered" ->
          let* replayed = int_field "replayed" j in
          let torn =
            match Json.member "torn" j with
            | Some (Json.Bool b) -> b
            | _ -> false
          in
          Ok (Recovered { replayed; torn })
      | Some other -> Error (Printf.sprintf "unknown server status %S" other))

let state_of_json j =
  let* st = str_field "state" j in
  match st with
  | "pending" -> Ok Pending
  | "running" -> Ok Running
  | "committed" ->
      let* v = str_field "value" j in
      Ok (Committed v)
  | "aborted" -> (
      match Json.member "veto" j with
      | Some v -> (
          match Json.to_str_opt v with
          | Some why -> Ok (Aborted (Some why))
          | None -> Error "field \"veto\": expected a string")
      | None -> Ok (Aborted None))
  | other -> Error (Printf.sprintf "unknown transaction state %S" other)

let pairs_field ~name ~of_fst ~of_snd j =
  match Json.member name j with
  | Some (Json.Arr items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Json.Arr [ a; b ] -> (
              match (of_fst a, of_snd b) with
              | Some a, Some b -> Ok ((a, b) :: acc)
              | _ ->
                  Error (Printf.sprintf "field %S: bad pair element" name))
          | _ -> Error (Printf.sprintf "field %S: expected pairs" name))
        (Ok []) items
      |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "field %S: expected an array" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let hist_of_json j =
  let* h_count = int_field "count" j in
  let* h_sum = int_field "sum" j in
  let* h_min = int_field "min" j in
  let* h_max = int_field "max" j in
  let* h_p50 = int_field "p50" j in
  let* h_p99 = int_field "p99" j in
  let* h_p999 = int_field "p999" j in
  let* h_buckets =
    pairs_field ~name:"buckets" ~of_fst:Json.to_int_opt
      ~of_snd:Json.to_int_opt j
  in
  Ok { h_count; h_sum; h_min; h_max; h_p50; h_p99; h_p999; h_buckets }

(* Absent on single-engine servers and pre-v5 peers: default []. *)
let per_shard_of_json j =
  match Json.member "shards" j with
  | None -> Ok []
  | Some (Json.Arr items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* r_shard = int_field "shard" item in
          let* r_submitted = int_field "submitted" item in
          let* r_committed = int_field "committed" item in
          let* r_aborted = int_field "aborted" item in
          let* r_vetoed = int_field "vetoed" item in
          let* r_live = int_field "live" item in
          Ok
            ({ r_shard; r_submitted; r_committed; r_aborted; r_vetoed; r_live }
            :: acc))
        (Ok []) items
      |> Result.map List.rev
  | Some _ -> Error "field \"shards\": expected an array"

let telemetry_of_json j =
  let* seq = int_field "seq" j in
  let* t_mono = float_field "t" j in
  let* interval_s = float_field "interval_s" j in
  let* win = field "win" j in
  let* w_requests = int_field "requests" win in
  let* w_submitted = int_field "submitted" win in
  let* w_committed = int_field "committed" win in
  let* w_aborted = int_field "aborted" win in
  let* w_vetoed = int_field "vetoed" win in
  let* w_orphans = int_field "orphans" win in
  let* w_alarms = int_field "alarms" win in
  let* lat = field "latency_us" win in
  let* w_latency = hist_of_json lat in
  let* occ = field "occ" j in
  let* o_live = int_field "live" occ in
  let* o_doomed = int_field "doomed" occ in
  let* o_conns = int_field "conns" occ in
  let* o_subscribers = int_field "subscribers" occ in
  let* total = field "total" j in
  let* c_submitted = int_field "submitted" total in
  let* c_committed = int_field "committed" total in
  let* c_aborted = int_field "aborted" total in
  let* c_vetoed = int_field "vetoed" total in
  let* c_alarms = int_field "alarms" total in
  let* sg = field "sg" j in
  let* sg_nodes = int_field "nodes" sg in
  let* sg_edges = int_field "edges" sg in
  let* sg_reorders = int_field "reorders" sg in
  let* hot =
    pairs_field ~name:"hot" ~of_fst:Json.to_str_opt ~of_snd:Json.to_int_opt j
  in
  let* stages =
    match Json.member "stages" j with
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (name, hj) ->
            let* acc = acc in
            let* h = hist_of_json hj in
            Ok ((name, h) :: acc))
          (Ok []) fields
        |> Result.map List.rev
    | Some _ -> Error "field \"stages\": expected an object"
    | None -> Ok []
  in
  let* gc_pause, gc_pct =
    match Json.member "gc" j with
    | None -> Ok (empty_hist, 0.)
    | Some gc ->
        let* p = field "pause_us" gc in
        let* gc_pause = hist_of_json p in
        let* gc_pct = float_field "pct" gc in
        Ok (gc_pause, gc_pct)
  in
  let* per_shard = per_shard_of_json j in
  Ok
    {
      seq;
      t_mono;
      interval_s;
      w_requests;
      w_submitted;
      w_committed;
      w_aborted;
      w_vetoed;
      w_orphans;
      w_alarms;
      w_latency;
      o_live;
      o_doomed;
      o_conns;
      o_subscribers;
      c_submitted;
      c_committed;
      c_aborted;
      c_vetoed;
      c_alarms;
      sg_nodes;
      sg_edges;
      sg_reorders;
      hot;
      stages;
      gc_pause;
      gc_pct;
      per_shard;
    }

let response_of_json j =
  let* ty = str_field "type" j in
  match ty with
  | "welcome" ->
      let* server = str_field "server" j in
      let* version = str_field "version" j in
      let* backend = str_field "backend" j in
      let* objects =
        match Json.member "objects" j with
        | Some (Json.Arr items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* name = str_field "name" item in
                let* decl = str_field "decl" item in
                Ok ((name, decl) :: acc))
              (Ok []) items
            |> Result.map List.rev
        | Some _ -> Error "field \"objects\": expected an array"
        | None -> Error "missing field \"objects\""
      in
      let* status = status_of_json j in
      (* Absent on pre-v5 servers: a single engine. *)
      let shards =
        match Json.member "shards" j with
        | Some v -> Option.value ~default:1 (Json.to_int_opt v)
        | None -> 1
      in
      Ok (Welcome { server; version; backend; status; objects; shards })
  | "accepted" ->
      let* t = txn_field "txn" j in
      let* req = req_field j in
      Ok (Accepted { txn = t; req })
  | "rejected" ->
      let* why = str_field "why" j in
      let* req = req_field j in
      Ok (Rejected { why; req })
  | "state" ->
      let* t = txn_field "txn" j in
      let* state = state_of_json j in
      let* req = req_field j in
      Ok (State { txn = t; state; req })
  | "metrics" ->
      let* m = field "metrics" j in
      Ok (Metrics_dump m)
  | "telemetry" ->
      let* t = telemetry_of_json j in
      Ok (Telemetry t)
  | "pong" ->
      let* t_mono = float_field "t" j in
      let* live = int_field "live" j in
      let* doomed = int_field "doomed" j in
      let* conns = int_field "conns" j in
      let* status = status_of_json j in
      Ok (Pong { t_mono; live; doomed; conns; status })
  | "dumped" ->
      let* spans = int_field "spans" j in
      let* dropped = int_field "dropped" j in
      let* jsonl = str_field "jsonl" j in
      let* chrome = str_field "chrome" j in
      Ok (Dumped { spans; dropped; jsonl; chrome })
  | "quiesced" ->
      let* committed = int_field "committed" j in
      let* aborted = int_field "aborted" j in
      let* vetoed = int_field "vetoed" j in
      let* alarms = int_field "alarms" j in
      let* per_shard = per_shard_of_json j in
      Ok (Quiesced { committed; aborted; vetoed; alarms; per_shard })
  | "goodbye" -> Ok Goodbye
  | "error" ->
      let* why = str_field "why" j in
      Ok (Error_msg why)
  | other -> Error (Printf.sprintf "unknown response type %S" other)

let decode_with of_json payload =
  let* j = Json.parse payload in
  of_json j

let encode_request r = frame (Json.to_string (request_to_json r))
let decode_request payload = decode_with request_of_json payload
let encode_response r = frame (Json.to_string (response_to_json r))
let decode_response payload = decode_with response_of_json payload

let hist_of_view (v : Nt_obs.Window.view) =
  {
    h_count = v.Window.count;
    h_sum = v.Window.sum;
    h_min = v.Window.min;
    h_max = v.Window.max;
    h_p50 = v.Window.p50;
    h_p99 = v.Window.p99;
    h_p999 = v.Window.p999;
    h_buckets = v.Window.buckets;
  }

let pp_request ppf r =
  Format.pp_print_string ppf (Json.to_string (request_to_json r))

let pp_response ppf r =
  Format.pp_print_string ppf (Json.to_string (response_to_json r))
