(** Server-side telemetry: the windowed hub behind [Telemetry] frames
    and the structured audit log.

    The {!Hub} owns the one sliding-window instrument a serving loop
    cannot read straight off the engine: submit-to-completion latency,
    fed from {!Engine.create}'s [on_top_complete] hook.  Everything
    else in a frame — request counts, the per-object
    [runtime.refused.*] family behind the hot-object ranking, engine
    totals — is computed by differencing cumulative sources at frame
    time: engine counters against their previous readings, and the
    server's {!Nt_obs.Metrics} registry against a {!Nt_obs.Snapshot}.
    The submit path pays nothing for telemetry beyond the hook's two
    histogram updates; in particular no event stream is required, so
    the server runs a metrics-only recorder by default.

    The {!Audit} writer emits one JSON object per line: an entry for
    every admission veto (carrying the full cycle and the
    [explain_cycle] witness chain) and for every slow request, each
    with the client's request id when one was supplied — the server
    half of the trace-propagation contract in {!Wire}. *)

open Nt_base
open Nt_obs

module Hub : sig
  type t

  val create :
    ?slots:int -> ?top_k:int -> ?t0:float -> interval_s:float -> Metrics.t -> t
  (** A hub windowing over [slots] intervals (default 8), reporting at
      most [top_k] hot objects (default 5).  The registry is the one
      the server counts wire requests in ([served.requests]) and hands
      to the engine's recorder — frames rank hot objects by the
      interval delta of its [runtime.refused.<obj>] counters, which
      the runtime maintains whenever the recorder is enabled.  The hub
      also registers cumulative twins there so [--prom] exports see
      totals: [served.latency_us], one [served.stage.<name>_us] per
      stage (the seven canonical {!Nt_obs.Stage.stages} and the
      durability {!Nt_obs.Stage.wal_stages} are pre-registered),
      [served.gc.pause_us] and the [served.gc.pct]
      gauge.  [t0] is the hub's clock reading at creation (default 0,
      the server's monotonic origin) — the start of the first GC
      interval. *)

  val observe_latency : t -> int -> unit
  (** Record one submit-to-completion latency (µs) into both the
      window and the cumulative registry histogram. *)

  val observe_stage : t -> string -> int -> unit
  (** [observe_stage t stage us] records one stage duration (µs) into
      the stage's windowed and cumulative histograms (get-or-create;
      new stage names join frames after the canonical seven). *)

  val observe_gc : t -> dur_us:int -> unit
  (** Record one completed GC pause: feeds the [gc.pause] histograms
      and accrues the open interval's %time-in-GC ([gc_pct] in the
      frame, the [served.gc.pct] gauge at {!cut}). *)

  val seq : t -> int
  (** Frames built so far. *)

  val interval_s : t -> float

  val peek :
    t ->
    eng:Engine.t ->
    alarms:int ->
    conns:int ->
    subscribers:int ->
    now:float ->
    Wire.telemetry
  (** Build a frame for the {e open} (partial) interval without
      closing it — what a fresh subscriber gets immediately.  [alarms]
      is the server's actionable-alarm count (backend-dependent, so
      the caller supplies it).  Increments {!seq}. *)

  val cut :
    t ->
    eng:Engine.t ->
    alarms:int ->
    conns:int ->
    subscribers:int ->
    now:float ->
    Wire.telemetry
  (** {!peek}, then close the interval: remember current cumulative
      readings as the new baseline, snapshot the registry and rotate
      the window.  Call once per telemetry interval. *)

  (** {2 Sharded frames}

      A sharded server cannot hand the hub one engine — each lives on
      its own domain — so the engine-reading half of a frame is split
      out as a [counts] value the caller assembles: per-shard
      {!Shard_engine.published} snapshots summed with {!merge}. *)

  type counts = {
    n_submitted : int;
    n_committed : int;
    n_aborted : int;
    n_vetoed : int;
    n_orphans : int;
    n_live : int;
    n_doomed : int;
    n_sg_nodes : int;
    n_sg_edges : int;
    n_sg_reorders : int;
  }

  val zero_counts : counts

  val counts_of_engine : Engine.t -> counts
  (** The readings {!peek} takes; must be called from the engine's
      owning thread. *)

  val merge : counts list -> counts
  (** Field-wise sum.  Exact for disjoint shard monitors: shard SGs
      partition the tops, cross-shard edges live in the spine. *)

  val peek_counts :
    ?per_shard:Wire.shard_row list ->
    t ->
    counts:counts ->
    alarms:int ->
    conns:int ->
    subscribers:int ->
    now:float ->
    Wire.telemetry
  (** {!peek} from pre-read counts instead of a live engine. *)

  val cut_counts :
    ?per_shard:Wire.shard_row list ->
    t ->
    counts:counts ->
    alarms:int ->
    conns:int ->
    subscribers:int ->
    now:float ->
    Wire.telemetry
  (** {!cut} from pre-read counts instead of a live engine. *)
end

module Audit : sig
  type t

  val open_file : string -> t
  val entries : t -> int

  val veto :
    t ->
    now:float ->
    req:string option ->
    client:string ->
    txn:Txn_id.t ->
    latency_us:int ->
    Admission.veto ->
    unit
  (** One JSONL entry: [ev:"veto"] with the vetoed node, the cycle as
      a transaction list, and the multi-line witness chain from
      [explain_cycle]. *)

  val slow :
    t ->
    now:float ->
    req:string option ->
    client:string ->
    txn:Txn_id.t ->
    latency_us:int ->
    outcome:string ->
    unit

  val close : t -> unit
end
