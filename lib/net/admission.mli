(** Online serialization-graph admission control.

    Wraps the incremental {!Nt_sg.Monitor}: {!on_action} feeds it every
    emitted action (wired through [Runtime.make ~on_action], so the
    monitor is exactly current at every point of the step), and {!gate}
    is the [Runtime] commit gate — it asks
    {!Nt_sg.Monitor.commit_would_cycle} whether performing the commit
    would close an SG cycle, and vetoes it if so, recording a witness
    ({!Nt_sg.Monitor.explain_cycle_with}) keyed by the transaction's
    top-level ancestor so the server can report {e why} a submission
    aborted.

    Soundness: in this construction only [Commit] actions can close a
    cycle (see the Admission-speculation section of
    {!Nt_sg.Monitor}), so gating every commit keeps the graph acyclic
    with zero false negatives — a gated server never raises a [Cycle]
    alarm.  With [gating:false] the monitor still runs (telemetry and
    alarms), but nothing is vetoed. *)

open Nt_base
open Nt_spec
open Nt_sg
open Nt_obs

type t

type veto = {
  node : Txn_id.t;  (** The transaction whose commit was vetoed. *)
  cycle : Txn_id.t list;  (** The cycle it would have closed. *)
  witness : string;  (** Edge-by-edge explanation. *)
}

val create : ?mode:Sg.conflict_mode -> ?obs:Obs.t -> ?gating:bool -> Schema.t -> t
(** Fresh controller over a fresh monitor ([gating] defaults to
    [true]; [obs] receives the monitor telemetry plus an
    [admission.vetoed] counter). *)

val on_action : t -> Action.t -> unit
(** Feed one action to the monitor (alarms are absorbed into
    {!alarms}; under gating none should ever fire). *)

val gate : t -> Txn_id.t -> bool
(** The commit gate: [false] vetoes. *)

val record_veto : t -> Txn_id.t -> cycle:Txn_id.t list -> witness:string -> unit
(** Record a veto decided {e outside} the local gate (the cross-shard
    spine, see [Nt_shard]): bumps {!vetoed}, stores the witness under
    the transaction's top-level ancestor, and emits the
    [admission.vetoed] counter — so externally-vetoed submissions
    report through {!veto_of} exactly like local ones. *)

val veto_of : t -> Txn_id.t -> veto option
(** The recorded veto under this transaction's top-level ancestor, if
    its abort was an admission veto. *)

val monitor : t -> Monitor.t
val gating : t -> bool
val admitted : t -> int
(** Commits the gate let through. *)

val vetoed : t -> int
val alarms : t -> int
(** Monitor alarms so far (cycle + inappropriate); always [0] under
    gating unless the backend is broken in a non-cycle way. *)

val cycle_alarms : t -> int
(** Cycle alarms alone — [0] under gating for {e any} backend.
    (A multiversion backend legitimately trips [Inappropriate]: its
    reads serialize by pseudotime, not by the completion order the
    monitor replays — so judge it on cycles only.) *)
