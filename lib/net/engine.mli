(** The open-loop serving engine.

    Wraps the {!Nt_generic.Runtime} stepper for a server: top-level
    programs {!submit}ted while the automaton runs are validated
    against the object table, attached as new children of [T0] and
    stepped under the usual policies; an {!Admission} controller is
    fed every action and (by default) vetoes commits that would close
    a serialization-graph cycle.

    The engine owns a {e growable} top-level forest, so its schema is
    a closure over the submission vector — names classify by the
    program node they denote at lookup time, exactly as
    {!Nt_serial.Program.schema_of} classifies a fixed forest.  The
    engine applies no replication transform: callers serving
    replicated objects submit physically transformed programs (see
    [Nt_check.Check.serve]). *)

open Nt_base
open Nt_spec
open Nt_serial
open Nt_generic
open Nt_obs
open Nt_sg

type t

type stage_times = {
  st_submit : float;  (** {!create}'s [clock] at {!submit}. *)
  mutable st_start : float;
      (** When the scheduler's [CREATE] fired (= [st_submit] until
          then): execution begins here, submit-to-start is queueing. *)
  mutable st_gate : float;
      (** Cumulative seconds spent inside the admission commit gate on
          behalf of this request (inner commits included). *)
  mutable st_gates : int;  (** Gate consultations. *)
  mutable st_complete : float;
      (** The top-level [Commit]/[Abort] ([0.] while running). *)
}
(** Wall-clock stage readings for one live top-level transaction,
    maintained only when {!create} was given a [clock]. *)

type state =
  | Unknown  (** Never submitted here. *)
  | Pending  (** Submitted; [REQUEST_CREATE] not yet fired. *)
  | Running
  | Committed of Value.t
  | Aborted of Admission.veto option
      (** With the veto record when admission was the cause. *)

val create :
  ?policy:Runtime.policy ->
  ?inform_policy:Runtime.inform_policy ->
  ?abort_prob:float ->
  ?max_steps:int ->
  ?obs:Obs.t ->
  ?mode:Sg.conflict_mode ->
  ?admission:bool ->
  ?max_program:int ->
  ?on_top_complete:(Txn_id.t -> [ `Committed | `Aborted ] -> unit) ->
  ?on_action:(Action.t -> unit) ->
  ?extra_gate:(Txn_id.t -> bool) ->
  ?clock:(unit -> float) ->
  seed:int ->
  (Obj_id.t * Datatype.t) list ->
  Nt_gobj.Gobj.factory ->
  t
(** An engine over the given object table, starting with an empty
    forest.  [admission] (default [true]) turns the commit gate on;
    the monitor runs either way.  [max_program] (default 10000) bounds
    accepted program sizes.  [on_top_complete] fires synchronously, in
    trace order, at every top-level [Commit]/[Abort] — the hook a
    server uses to measure submit-to-completion latency and attribute
    the outcome (e.g. audit-log a veto) while the admission record is
    fresh; keep it cheap, it runs inside {!step}.  [clock] (a
    monotonic-seconds reading; [lib/net] links no [unix], so the
    server injects one) turns on {!stage_times} bookkeeping: submit /
    scheduler-start / cumulative-gate / completion stamps per live
    top-level transaction, at the cost of a couple of clock reads per
    transaction and per gate consultation.  Without it the engine
    behaves exactly as before.  [on_action] is a read-only tap fired
    before the engine's own bookkeeping on every runtime action — a
    shard wrapper uses it to stamp sequence numbers and mirror the
    action stream.  [extra_gate] is a second commit gate consulted
    {e only after} the local admission controller admits: returning
    [false] vetoes the commit exactly as a local veto would (the
    caller should record the veto via {!Admission.record_veto} so
    {!state} can report it). *)

val submit : t -> Program.t -> (Txn_id.t, string) result
(** Validate (size, declared objects, offered operations) and attach.
    [Ok t] names the new top-level transaction — nothing has run yet;
    {!step} drives it. *)

val step : t -> [ `Progress | `Quiescent | `Truncated ]
(** One {!Nt_generic.Runtime.step}, then retire any doomed
    transactions that became abortable.  [`Quiescent] means idle until
    the next {!submit}. *)

val drain : ?burst:int -> t -> [ `Progress | `Quiescent | `Truncated ]
(** Step until quiescent/truncated, or until [burst] steps elapsed
    ([`Progress] — still working). *)

val kill :
  t -> Txn_id.t -> [ `Aborted | `Doomed | `Already_complete | `Unknown ]
(** Orphan a submission (its client vanished): abort it now if the
    controller may, else mark it doomed — the sweep after each
    subsequent {!step} aborts it at the first legal moment, so no
    locks outlive the disconnect. *)

val state : t -> Txn_id.t -> state

val finish : t -> Runtime.result
(** Settle telemetry and package the run.  Call once, when serving
    stops; the trace judges against the offline oracles. *)

val forest : t -> Program.t list
(** All submissions so far, in [T0]-child order — with the trace from
    {!finish}, exactly what the offline {!Nt_check} oracles need. *)

val schema : t -> Schema.t
val objects : t -> (Obj_id.t * Datatype.t) list
val admission : t -> Admission.t
val submitted : t -> int
val committed_top : t -> int
val aborted_top : t -> int

val live_top : t -> int
(** Occupancy: submissions not yet committed or aborted. *)

val vetoed : t -> int
val alarms : t -> int
val cycle_alarms : t -> int
val truncated : t -> bool
val doomed_count : t -> int
val actions_so_far : t -> int

val steps_so_far : t -> int
(** The runtime's step counter — {e productive} steps only (a
    quiescent {!step} does not advance it). *)

val step_calls : t -> int
(** {!step} invocations, quiescent ones included ({!drain}'s internal
    calls count).  This is the number the write-ahead log records: a
    quiescent step still sweeps doomed transactions, so replay must
    reproduce the call sequence, not the productive-step count. *)

val orphan_aborts : t -> int

val stage_times : t -> Txn_id.t -> stage_times option
(** The live stage readings for a submitted top-level transaction.
    [None] without a [clock], for foreign names, and once the
    transaction completes — the entry is retired when the top-level
    [Commit]/[Abort] returns, so read it inside [on_top_complete]
    (where [st_complete] is already stamped) or before completion. *)

(** {1 Recovery} *)

type replay_event =
  [ `Submit of Program.t | `Kill of Txn_id.t | `Steps of int ]
(** One logged engine call: a validated submission, an orphan kill, or
    a run of [k] {!step} calls (quiescent calls included — see
    {!step_calls}).  {!Wal.replayable_of_records} produces these from
    a scanned log. *)

val recover : t -> replay_event list -> (int, string) result
(** Replay a logged call sequence into a {e fresh} engine (same seed,
    objects, factory, policies as the original — the caller rebuilds
    that configuration, typically validated against the log's [Meta]
    record).  Determinism of the runtime then reproduces the pre-crash
    state exactly: same forest, same trace prefix, same admission
    verdicts, same monitor graph.  [Ok n] counts events applied;
    errors if the engine has already submitted or stepped, or if a
    logged submission fails validation (a config mismatch — the log
    belongs to a different server). *)

val replay : t -> replay_event list -> (int, string) result
(** {!recover} without the freshness check: apply one chunk of a
    longer replay.  For callers that interleave replay with serving
    probes (the server replays in bounded chunks so [Ping] stays
    responsive, and resumes from where the snapshot left off) —
    correctness still requires the chunks to concatenate into the
    logged sequence from a fresh engine. *)
