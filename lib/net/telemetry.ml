open Nt_base
open Nt_obs
open Nt_sg

module Hub = struct
  type t = {
    interval_s : float;
    win : Window.t;
    latency_w : Window.whistogram;
    latency_c : Metrics.histogram;  (* cumulative twin, for --prom *)
    registry : Metrics.t;
    mutable prev_snap : Snapshot.t;
    top_k : int;
    mutable seq : int;
    (* per-stage latency histograms: windowed + cumulative twins,
       resolved once per name (the serving loop observes by string a
       handful of times per request) *)
    stage_tbl : (string, Window.whistogram * Metrics.histogram) Hashtbl.t;
    mutable stage_order : string list;  (* reporting order, reversed *)
    gc_w : Window.whistogram;
    gc_c : Metrics.histogram;
    gc_pct_g : Metrics.gauge;
    mutable gc_busy : float;  (* pause seconds in the open interval *)
    mutable t_cut : float;  (* when the open interval started *)
    (* previous cumulative engine readings, for window deltas *)
    mutable p_submitted : int;
    mutable p_committed : int;
    mutable p_aborted : int;
    mutable p_vetoed : int;
    mutable p_orphans : int;
    mutable p_alarms : int;
  }

  let stage_instruments t name =
    match Hashtbl.find_opt t.stage_tbl name with
    | Some pair -> pair
    | None ->
        let pair =
          ( Window.histogram t.win ("stage." ^ name),
            Metrics.histogram t.registry ("served.stage." ^ name ^ "_us") )
        in
        Hashtbl.add t.stage_tbl name pair;
        t.stage_order <- name :: t.stage_order;
        pair

  let create ?(slots = 8) ?(top_k = 5) ?(t0 = 0.) ~interval_s metrics =
    let win = Window.create ~slots () in
    let t =
      {
        interval_s;
        win;
        latency_w = Window.histogram win "latency_us";
        latency_c = Metrics.histogram metrics "served.latency_us";
        registry = metrics;
        prev_snap = Snapshot.capture metrics;
        top_k;
        seq = 0;
        stage_tbl = Hashtbl.create 16;
        stage_order = [];
        gc_w = Window.histogram win "gc.pause_us";
        gc_c = Metrics.histogram metrics "served.gc.pause_us";
        gc_pct_g = Metrics.gauge metrics "served.gc.pct";
        gc_busy = 0.;
        t_cut = t0;
        p_submitted = 0;
        p_committed = 0;
        p_aborted = 0;
        p_vetoed = 0;
        p_orphans = 0;
        p_alarms = 0;
      }
    in
    (* Pre-register the canonical stages (and the server-global
       durability stages) so every frame carries all of them,
       sample-bearing or not, in lifecycle order. *)
    List.iter
      (fun s -> ignore (stage_instruments t s))
      (Stage.stages @ Stage.wal_stages);
    t

  let seq t = t.seq
  let interval_s t = t.interval_s

  let observe_latency t us =
    Window.observe t.latency_w us;
    Metrics.observe t.latency_c us

  let observe_stage t name us =
    let w, c = stage_instruments t name in
    Window.observe w us;
    Metrics.observe c us

  let observe_gc t ~dur_us =
    Window.observe t.gc_w dur_us;
    Metrics.observe t.gc_c dur_us;
    t.gc_busy <- t.gc_busy +. (float_of_int dur_us /. 1e6)

  (* The runtime registers one [runtime.refused.<obj>] counter per
     schema object and bumps it on every refused access, so the
     interval delta of that family ranks this window's contended
     objects without any event stream in the loop. *)
  let refused_prefix = "runtime.refused."

  let hot_top t delta =
    let plen = String.length refused_prefix in
    Metrics.counters delta
    |> List.filter_map (fun (name, n) ->
           if
             n > 0
             && String.length name > plen
             && String.sub name 0 plen = refused_prefix
           then Some (String.sub name plen (String.length name - plen), n)
           else None)
    |> List.sort (fun (a, na) (b, nb) ->
           if na <> nb then compare nb na else compare a b)
    |> List.filteri (fun i _ -> i < t.top_k)

  (* The cumulative engine readings a frame differences against its
     previous cut.  A single-engine server builds them with
     [counts_of_engine]; a sharded one sums per-shard snapshots with
     [merge] — the hub itself never touches an engine, so it cannot
     race a worker domain. *)
  type counts = {
    n_submitted : int;
    n_committed : int;
    n_aborted : int;
    n_vetoed : int;
    n_orphans : int;
    n_live : int;
    n_doomed : int;
    n_sg_nodes : int;
    n_sg_edges : int;
    n_sg_reorders : int;
  }

  let zero_counts =
    {
      n_submitted = 0;
      n_committed = 0;
      n_aborted = 0;
      n_vetoed = 0;
      n_orphans = 0;
      n_live = 0;
      n_doomed = 0;
      n_sg_nodes = 0;
      n_sg_edges = 0;
      n_sg_reorders = 0;
    }

  let counts_of_engine eng =
    let graph = Monitor.graph (Admission.monitor (Engine.admission eng)) in
    {
      n_submitted = Engine.submitted eng;
      n_committed = Engine.committed_top eng;
      n_aborted = Engine.aborted_top eng;
      n_vetoed = Engine.vetoed eng;
      n_orphans = Engine.orphan_aborts eng;
      n_live = Engine.live_top eng;
      n_doomed = Engine.doomed_count eng;
      n_sg_nodes = Graph.n_nodes graph;
      n_sg_edges = Graph.n_edges graph;
      n_sg_reorders = Graph.reorders graph;
    }

  (* Summing the graph sizes is exact for a sharded monitor: shard SGs
     partition the top-level transactions, so their node and edge sets
     are disjoint (cross-shard edges live in the spine, not in any
     shard's graph). *)
  let merge cs =
    List.fold_left
      (fun a c ->
        {
          n_submitted = a.n_submitted + c.n_submitted;
          n_committed = a.n_committed + c.n_committed;
          n_aborted = a.n_aborted + c.n_aborted;
          n_vetoed = a.n_vetoed + c.n_vetoed;
          n_orphans = a.n_orphans + c.n_orphans;
          n_live = a.n_live + c.n_live;
          n_doomed = a.n_doomed + c.n_doomed;
          n_sg_nodes = a.n_sg_nodes + c.n_sg_nodes;
          n_sg_edges = a.n_sg_edges + c.n_sg_edges;
          n_sg_reorders = a.n_sg_reorders + c.n_sg_reorders;
        })
      zero_counts cs

  let peek_counts ?(per_shard = []) t ~counts:c ~alarms ~conns ~subscribers
      ~now =
    t.seq <- t.seq + 1;
    let delta, _ = Snapshot.delta_live ~at:now ~prev:t.prev_snap t.registry in
    let w_requests =
      Metrics.counter_value (Metrics.counter delta "served.requests")
    in
    {
      Wire.seq = t.seq;
      t_mono = now;
      interval_s = t.interval_s;
      w_requests;
      w_submitted = c.n_submitted - t.p_submitted;
      w_committed = c.n_committed - t.p_committed;
      w_aborted = c.n_aborted - t.p_aborted;
      w_vetoed = c.n_vetoed - t.p_vetoed;
      w_orphans = c.n_orphans - t.p_orphans;
      w_alarms = alarms - t.p_alarms;
      w_latency = Wire.hist_of_view (Window.histogram_current t.latency_w);
      o_live = c.n_live;
      o_doomed = c.n_doomed;
      o_conns = conns;
      o_subscribers = subscribers;
      c_submitted = c.n_submitted;
      c_committed = c.n_committed;
      c_aborted = c.n_aborted;
      c_vetoed = c.n_vetoed;
      c_alarms = alarms;
      sg_nodes = c.n_sg_nodes;
      sg_edges = c.n_sg_edges;
      sg_reorders = c.n_sg_reorders;
      hot = hot_top t delta;
      stages =
        List.rev_map
          (fun name ->
            let w, _ = Hashtbl.find t.stage_tbl name in
            (name, Wire.hist_of_view (Window.histogram_current w)))
          t.stage_order;
      gc_pause = Wire.hist_of_view (Window.histogram_current t.gc_w);
      gc_pct =
        (let elapsed = now -. t.t_cut in
         if elapsed <= 0. then 0.
         else Float.min 100. (100. *. t.gc_busy /. elapsed));
      per_shard;
    }

  let cut_counts ?per_shard t ~counts:c ~alarms ~conns ~subscribers ~now =
    let frame =
      peek_counts ?per_shard t ~counts:c ~alarms ~conns ~subscribers ~now
    in
    t.p_submitted <- c.n_submitted;
    t.p_committed <- c.n_committed;
    t.p_aborted <- c.n_aborted;
    t.p_vetoed <- c.n_vetoed;
    t.p_orphans <- c.n_orphans;
    t.p_alarms <- alarms;
    t.prev_snap <- Snapshot.capture ~at:now t.registry;
    Metrics.set t.gc_pct_g frame.Wire.gc_pct;
    t.gc_busy <- 0.;
    t.t_cut <- now;
    Window.tick t.win;
    frame

  let peek t ~eng ~alarms ~conns ~subscribers ~now =
    peek_counts t ~counts:(counts_of_engine eng) ~alarms ~conns ~subscribers
      ~now

  let cut t ~eng ~alarms ~conns ~subscribers ~now =
    cut_counts t ~counts:(counts_of_engine eng) ~alarms ~conns ~subscribers
      ~now
end

module Audit = struct
  type t = { oc : out_channel; mutable entries : int }

  let open_file path = { oc = open_out path; entries = 0 }
  let entries t = t.entries

  let write t fields =
    Json.output t.oc (Json.Obj fields);
    output_char t.oc '\n';
    flush t.oc;
    t.entries <- t.entries + 1

  let common ~ev ~now ~req ~client ~txn ~latency_us =
    let base =
      [
        ("ev", Json.Str ev);
        ("t", Json.Float now);
        ("client", Json.Str client);
        ("txn", Json.Str (Txn_id.to_string txn));
        ("latency_us", Json.Int latency_us);
      ]
    in
    match req with
    | None -> base
    | Some r -> ("req", Json.Str r) :: base

  let veto t ~now ~req ~client ~txn ~latency_us (v : Admission.veto) =
    write t
      (common ~ev:"veto" ~now ~req ~client ~txn ~latency_us
      @ [
          ("node", Json.Str (Txn_id.to_string v.Admission.node));
          ( "cycle",
            Json.Arr
              (List.map
                 (fun u -> Json.Str (Txn_id.to_string u))
                 v.Admission.cycle) );
          ("witness", Json.Str v.Admission.witness);
        ])

  let slow t ~now ~req ~client ~txn ~latency_us ~outcome =
    write t
      (common ~ev:"slow" ~now ~req ~client ~txn ~latency_us
      @ [ ("outcome", Json.Str outcome) ])

  let close t = close_out t.oc
end
