open Nt_base
open Nt_obs
open Nt_sg

module Hub = struct
  type t = {
    interval_s : float;
    win : Window.t;
    latency_w : Window.whistogram;
    latency_c : Metrics.histogram;  (* cumulative twin, for --prom *)
    registry : Metrics.t;
    mutable prev_snap : Snapshot.t;
    top_k : int;
    mutable seq : int;
    (* per-stage latency histograms: windowed + cumulative twins,
       resolved once per name (the serving loop observes by string a
       handful of times per request) *)
    stage_tbl : (string, Window.whistogram * Metrics.histogram) Hashtbl.t;
    mutable stage_order : string list;  (* reporting order, reversed *)
    gc_w : Window.whistogram;
    gc_c : Metrics.histogram;
    gc_pct_g : Metrics.gauge;
    mutable gc_busy : float;  (* pause seconds in the open interval *)
    mutable t_cut : float;  (* when the open interval started *)
    (* previous cumulative engine readings, for window deltas *)
    mutable p_submitted : int;
    mutable p_committed : int;
    mutable p_aborted : int;
    mutable p_vetoed : int;
    mutable p_orphans : int;
    mutable p_alarms : int;
  }

  let stage_instruments t name =
    match Hashtbl.find_opt t.stage_tbl name with
    | Some pair -> pair
    | None ->
        let pair =
          ( Window.histogram t.win ("stage." ^ name),
            Metrics.histogram t.registry ("served.stage." ^ name ^ "_us") )
        in
        Hashtbl.add t.stage_tbl name pair;
        t.stage_order <- name :: t.stage_order;
        pair

  let create ?(slots = 8) ?(top_k = 5) ?(t0 = 0.) ~interval_s metrics =
    let win = Window.create ~slots () in
    let t =
      {
        interval_s;
        win;
        latency_w = Window.histogram win "latency_us";
        latency_c = Metrics.histogram metrics "served.latency_us";
        registry = metrics;
        prev_snap = Snapshot.capture metrics;
        top_k;
        seq = 0;
        stage_tbl = Hashtbl.create 16;
        stage_order = [];
        gc_w = Window.histogram win "gc.pause_us";
        gc_c = Metrics.histogram metrics "served.gc.pause_us";
        gc_pct_g = Metrics.gauge metrics "served.gc.pct";
        gc_busy = 0.;
        t_cut = t0;
        p_submitted = 0;
        p_committed = 0;
        p_aborted = 0;
        p_vetoed = 0;
        p_orphans = 0;
        p_alarms = 0;
      }
    in
    (* Pre-register the canonical stages (and the server-global
       durability stages) so every frame carries all of them,
       sample-bearing or not, in lifecycle order. *)
    List.iter
      (fun s -> ignore (stage_instruments t s))
      (Stage.stages @ Stage.wal_stages);
    t

  let seq t = t.seq
  let interval_s t = t.interval_s

  let observe_latency t us =
    Window.observe t.latency_w us;
    Metrics.observe t.latency_c us

  let observe_stage t name us =
    let w, c = stage_instruments t name in
    Window.observe w us;
    Metrics.observe c us

  let observe_gc t ~dur_us =
    Window.observe t.gc_w dur_us;
    Metrics.observe t.gc_c dur_us;
    t.gc_busy <- t.gc_busy +. (float_of_int dur_us /. 1e6)

  (* The runtime registers one [runtime.refused.<obj>] counter per
     schema object and bumps it on every refused access, so the
     interval delta of that family ranks this window's contended
     objects without any event stream in the loop. *)
  let refused_prefix = "runtime.refused."

  let hot_top t delta =
    let plen = String.length refused_prefix in
    Metrics.counters delta
    |> List.filter_map (fun (name, n) ->
           if
             n > 0
             && String.length name > plen
             && String.sub name 0 plen = refused_prefix
           then Some (String.sub name plen (String.length name - plen), n)
           else None)
    |> List.sort (fun (a, na) (b, nb) ->
           if na <> nb then compare nb na else compare a b)
    |> List.filteri (fun i _ -> i < t.top_k)

  let peek t ~eng ~alarms ~conns ~subscribers ~now =
    t.seq <- t.seq + 1;
    let delta, _ = Snapshot.delta_live ~at:now ~prev:t.prev_snap t.registry in
    let w_requests =
      Metrics.counter_value (Metrics.counter delta "served.requests")
    in
    let graph = Monitor.graph (Admission.monitor (Engine.admission eng)) in
    {
      Wire.seq = t.seq;
      t_mono = now;
      interval_s = t.interval_s;
      w_requests;
      w_submitted = Engine.submitted eng - t.p_submitted;
      w_committed = Engine.committed_top eng - t.p_committed;
      w_aborted = Engine.aborted_top eng - t.p_aborted;
      w_vetoed = Engine.vetoed eng - t.p_vetoed;
      w_orphans = Engine.orphan_aborts eng - t.p_orphans;
      w_alarms = alarms - t.p_alarms;
      w_latency = Wire.hist_of_view (Window.histogram_current t.latency_w);
      o_live = Engine.live_top eng;
      o_doomed = Engine.doomed_count eng;
      o_conns = conns;
      o_subscribers = subscribers;
      c_submitted = Engine.submitted eng;
      c_committed = Engine.committed_top eng;
      c_aborted = Engine.aborted_top eng;
      c_vetoed = Engine.vetoed eng;
      c_alarms = alarms;
      sg_nodes = Graph.n_nodes graph;
      sg_edges = Graph.n_edges graph;
      sg_reorders = Graph.reorders graph;
      hot = hot_top t delta;
      stages =
        List.rev_map
          (fun name ->
            let w, _ = Hashtbl.find t.stage_tbl name in
            (name, Wire.hist_of_view (Window.histogram_current w)))
          t.stage_order;
      gc_pause = Wire.hist_of_view (Window.histogram_current t.gc_w);
      gc_pct =
        (let elapsed = now -. t.t_cut in
         if elapsed <= 0. then 0.
         else Float.min 100. (100. *. t.gc_busy /. elapsed));
    }

  let cut t ~eng ~alarms ~conns ~subscribers ~now =
    let frame = peek t ~eng ~alarms ~conns ~subscribers ~now in
    t.p_submitted <- Engine.submitted eng;
    t.p_committed <- Engine.committed_top eng;
    t.p_aborted <- Engine.aborted_top eng;
    t.p_vetoed <- Engine.vetoed eng;
    t.p_orphans <- Engine.orphan_aborts eng;
    t.p_alarms <- alarms;
    t.prev_snap <- Snapshot.capture ~at:now t.registry;
    Metrics.set t.gc_pct_g frame.Wire.gc_pct;
    t.gc_busy <- 0.;
    t.t_cut <- now;
    Window.tick t.win;
    frame
end

module Audit = struct
  type t = { oc : out_channel; mutable entries : int }

  let open_file path = { oc = open_out path; entries = 0 }
  let entries t = t.entries

  let write t fields =
    Json.output t.oc (Json.Obj fields);
    output_char t.oc '\n';
    flush t.oc;
    t.entries <- t.entries + 1

  let common ~ev ~now ~req ~client ~txn ~latency_us =
    let base =
      [
        ("ev", Json.Str ev);
        ("t", Json.Float now);
        ("client", Json.Str client);
        ("txn", Json.Str (Txn_id.to_string txn));
        ("latency_us", Json.Int latency_us);
      ]
    in
    match req with
    | None -> base
    | Some r -> ("req", Json.Str r) :: base

  let veto t ~now ~req ~client ~txn ~latency_us (v : Admission.veto) =
    write t
      (common ~ev:"veto" ~now ~req ~client ~txn ~latency_us
      @ [
          ("node", Json.Str (Txn_id.to_string v.Admission.node));
          ( "cycle",
            Json.Arr
              (List.map
                 (fun u -> Json.Str (Txn_id.to_string u))
                 v.Admission.cycle) );
          ("witness", Json.Str v.Admission.witness);
        ])

  let slow t ~now ~req ~client ~txn ~latency_us ~outcome =
    write t
      (common ~ev:"slow" ~now ~req ~client ~txn ~latency_us
      @ [ ("outcome", Json.Str outcome) ])

  let close t = close_out t.oc
end
