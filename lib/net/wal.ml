(* The write-ahead log: framing, checksums, torn-tail-tolerant
   scanning, group-commit batching and snapshot encode/decode.  See
   wal.mli for the format and doc/durability.mld for the recovery
   argument.  No I/O and no [unix] here: byte sinks and fsync are
   injected, like the engine's clock. *)

open Nt_base

let wal_magic = "NTWAL01\n"
let snap_magic = "NTSNAP1\n"
let header_len = 16
let max_record = 16 * 1024 * 1024

(* ----- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ----- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ----- records ----- *)

type outcome = Committed of string | Aborted of string option

type record =
  | Meta of {
      seed : int;
      backend : string;
      policy : string;
      inform : string;
      abort_prob : float;
      objects : (string * string) list;
    }
  | Submit of { req : string option; client : string; program : string }
  | Kill of { txn : Txn_id.t }
  | Steps of int
  | Outcome of { txn : Txn_id.t; outcome : outcome }
  | Sg_state of { nodes : string array; edges : (int * int) list }
  | Counts of { submitted : int; committed : int; aborted : int; vetoed : int }

let record_name = function
  | Meta _ -> "meta"
  | Submit _ -> "submit"
  | Kill _ -> "kill"
  | Steps _ -> "steps"
  | Outcome _ -> "outcome"
  | Sg_state _ -> "sg-state"
  | Counts _ -> "counts"

(* ----- binary encode ----- *)

let add_u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

let add_u32 b n =
  add_u8 b (n lsr 24);
  add_u8 b (n lsr 16);
  add_u8 b (n lsr 8);
  add_u8 b n

let add_u64 b n =
  add_u32 b ((n lsr 32) land 0xFFFFFFFF);
  add_u32 b (n land 0xFFFFFFFF)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_opt_str b = function
  | None -> add_u8 b 0
  | Some s ->
      add_u8 b 1;
      add_str b s

let tag_of = function
  | Meta _ -> 1
  | Submit _ -> 2
  | Kill _ -> 3
  | Steps _ -> 4
  | Outcome _ -> 5
  | Sg_state _ -> 6
  | Counts _ -> 7

let payload_of r =
  let b = Buffer.create 64 in
  add_u8 b (tag_of r);
  (match r with
  | Meta { seed; backend; policy; inform; abort_prob; objects } ->
      add_u64 b seed;
      add_str b backend;
      add_str b policy;
      add_str b inform;
      (* [abort_prob] is non-negative, so the sign bit is clear and the
         IEEE image fits OCaml's 63-bit int exactly. *)
      add_u64 b (Int64.to_int (Int64.bits_of_float abort_prob));
      add_u32 b (List.length objects);
      List.iter
        (fun (name, decl) ->
          add_str b name;
          add_str b decl)
        objects
  | Submit { req; client; program } ->
      add_opt_str b req;
      add_str b client;
      add_str b program
  | Kill { txn } -> add_str b (Txn_id.to_string txn)
  | Steps n -> add_u64 b n
  | Outcome { txn; outcome } -> (
      add_str b (Txn_id.to_string txn);
      match outcome with
      | Committed v ->
          add_u8 b 0;
          add_str b v
      | Aborted None -> add_u8 b 1
      | Aborted (Some why) ->
          add_u8 b 2;
          add_str b why)
  | Sg_state { nodes; edges } ->
      add_u32 b (Array.length nodes);
      Array.iter (fun n -> add_str b n) nodes;
      add_u32 b (List.length edges);
      List.iter
        (fun (u, v) ->
          add_u32 b u;
          add_u32 b v)
        edges
  | Counts { submitted; committed; aborted; vetoed } ->
      add_u64 b submitted;
      add_u64 b committed;
      add_u64 b aborted;
      add_u64 b vetoed);
  Buffer.contents b

let encode_record r =
  let payload = payload_of r in
  let b = Buffer.create (String.length payload + 8) in
  add_u32 b (String.length payload);
  add_u32 b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* ----- binary decode (total: exceptions confined to this block) ----- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let need c n msg =
  if c.pos + n > String.length c.s then
    raise (Bad (Printf.sprintf "truncated %s at byte %d" msg c.pos))

let get_u8 c msg =
  need c 1 msg;
  let n = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  n

let get_u32 c msg =
  need c 4 msg;
  let b i = Char.code c.s.[c.pos + i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  c.pos <- c.pos + 4;
  n

let get_u64 c msg =
  let hi = get_u32 c msg in
  let lo = get_u32 c msg in
  (hi lsl 32) lor lo

let get_str c msg =
  let n = get_u32 c msg in
  if n > max_record then raise (Bad (Printf.sprintf "implausible %s length %d" msg n));
  need c n msg;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt_str c msg =
  match get_u8 c msg with
  | 0 -> None
  | 1 -> Some (get_str c msg)
  | k -> raise (Bad (Printf.sprintf "bad option tag %d for %s" k msg))

let get_txn c msg =
  let s = get_str c msg in
  match Txn_id.of_string s with
  | Some t -> t
  | None -> raise (Bad (Printf.sprintf "bad transaction name %S in %s" s msg))

let decode_payload payload =
  let c = { s = payload; pos = 0 } in
  match
    let r =
      match get_u8 c "tag" with
      | 1 ->
          let seed = get_u64 c "meta.seed" in
          let backend = get_str c "meta.backend" in
          let policy = get_str c "meta.policy" in
          let inform = get_str c "meta.inform" in
          let abort_prob =
            Int64.float_of_bits (Int64.of_int (get_u64 c "meta.abort-prob"))
          in
          let n = get_u32 c "meta.objects" in
          if n > max_record then raise (Bad "implausible object count");
          let objects =
            List.init n (fun _ ->
                let name = get_str c "meta.object.name" in
                let decl = get_str c "meta.object.decl" in
                (name, decl))
          in
          Meta { seed; backend; policy; inform; abort_prob; objects }
      | 2 ->
          let req = get_opt_str c "submit.req" in
          let client = get_str c "submit.client" in
          let program = get_str c "submit.program" in
          Submit { req; client; program }
      | 3 -> Kill { txn = get_txn c "kill.txn" }
      | 4 -> Steps (get_u64 c "steps")
      | 5 -> (
          let txn = get_txn c "outcome.txn" in
          match get_u8 c "outcome.kind" with
          | 0 -> Outcome { txn; outcome = Committed (get_str c "outcome.value") }
          | 1 -> Outcome { txn; outcome = Aborted None }
          | 2 ->
              Outcome { txn; outcome = Aborted (Some (get_str c "outcome.veto")) }
          | k -> raise (Bad (Printf.sprintf "bad outcome kind %d" k)))
      | 6 ->
          let n = get_u32 c "sg.nodes" in
          if n > max_record then raise (Bad "implausible node count");
          let nodes = Array.init n (fun _ -> get_str c "sg.node") in
          let m = get_u32 c "sg.edges" in
          if m > max_record then raise (Bad "implausible edge count");
          let edges =
            List.init m (fun _ ->
                let u = get_u32 c "sg.edge.src" in
                let v = get_u32 c "sg.edge.dst" in
                if u >= n || v >= n then
                  raise (Bad (Printf.sprintf "edge (%d,%d) out of range" u v));
                (u, v))
          in
          Sg_state { nodes; edges }
      | 7 ->
          let submitted = get_u64 c "counts.submitted" in
          let committed = get_u64 c "counts.committed" in
          let aborted = get_u64 c "counts.aborted" in
          let vetoed = get_u64 c "counts.vetoed" in
          Counts { submitted; committed; aborted; vetoed }
      | t -> raise (Bad (Printf.sprintf "unknown record tag %d" t))
    in
    if c.pos <> String.length payload then
      raise
        (Bad
           (Printf.sprintf "%d trailing bytes after %s record"
              (String.length payload - c.pos)
              (record_name r)));
    r
  with
  | r -> Ok r
  | exception Bad e -> Error e

(* ----- file header and scanning ----- *)

let header ~magic ~base_seq =
  let b = Buffer.create header_len in
  Buffer.add_string b magic;
  add_u64 b base_seq;
  Buffer.contents b

type tail = Clean | Torn of { valid : int; why : string }

type scanned = {
  sc_base_seq : int;
  sc_records : record list;
  sc_offsets : int list;
  sc_valid : int;
  sc_tail : tail;
}

let scan ~magic s =
  let len = String.length s in
  if len = 0 then
    Ok
      {
        sc_base_seq = 0;
        sc_records = [];
        sc_offsets = [];
        sc_valid = 0;
        sc_tail = Clean;
      }
  else if len < header_len then
    (* Too short to even hold the header.  If what is there agrees with
       the magic it is a torn header (crash during creation); anything
       else is not our file. *)
    let n = min len (String.length magic) in
    if String.sub s 0 n = String.sub magic 0 n then
      Ok
        {
          sc_base_seq = 0;
          sc_records = [];
          sc_offsets = [];
          sc_valid = 0;
          sc_tail = Torn { valid = 0; why = "truncated file header" };
        }
    else Error (Printf.sprintf "bad magic (not a %s file)" (String.trim magic))
  else if String.sub s 0 (String.length magic) <> magic then
    Error (Printf.sprintf "bad magic (not a %s file)" (String.trim magic))
  else begin
    let c = { s; pos = String.length magic } in
    let base_seq = get_u64 c "base-seq" in
    let records = ref [] and offsets = ref [] in
    let tail = ref Clean and valid = ref header_len in
    let pos = ref header_len in
    (try
       while !pos < len do
         let remaining = len - !pos in
         if remaining < 8 then begin
           tail :=
             Torn
               {
                 valid = !valid;
                 why =
                   Printf.sprintf "truncated length prefix (%d bytes)" remaining;
               };
           raise Exit
         end;
         let c = { s; pos = !pos } in
         let plen = get_u32 c "length" in
         let crc = get_u32 c "crc" in
         if plen > max_record then begin
           tail :=
             Torn
               {
                 valid = !valid;
                 why = Printf.sprintf "implausible record length %d" plen;
               };
           raise Exit
         end;
         if remaining - 8 < plen then begin
           tail :=
             Torn
               {
                 valid = !valid;
                 why =
                   Printf.sprintf "cut mid-record (want %d payload bytes, have %d)"
                     plen (remaining - 8);
               };
           raise Exit
         end;
         let payload = String.sub s (!pos + 8) plen in
         if crc32 payload <> crc then begin
           tail := Torn { valid = !valid; why = "checksum mismatch" };
           raise Exit
         end;
         (match decode_payload payload with
         | Ok r ->
             records := r :: !records;
             offsets := !pos :: !offsets
         | Error e ->
             tail := Torn { valid = !valid; why = "undecodable record: " ^ e };
             raise Exit);
         pos := !pos + 8 + plen;
         valid := !pos
       done
     with Exit -> ());
    Ok
      {
        sc_base_seq = base_seq;
        sc_records = List.rev !records;
        sc_offsets = List.rev !offsets;
        sc_valid = !valid;
        sc_tail = !tail;
      }
  end

(* ----- writer ----- *)

type sink = { write : string -> unit; sync : unit -> unit }

let buffer_sink b = { write = Buffer.add_string b; sync = (fun () -> ()) }

module Writer = struct
  type t = {
    sink : sink;
    fsync_batch : int;
    fsync_interval_s : float;
    clock : (unit -> float) option;
    on_sync : unit -> unit;
    mutable next_seq : int;
    mutable appended : int;
    mutable syncs : int;
    mutable bytes : int;
    mutable dirty : int;  (* records appended since the last sync *)
    mutable last_sync : float;
    mutable pending : (Txn_id.t * outcome) list;  (* newest first *)
  }

  let create ?(fsync_batch = 1) ?(fsync_interval_s = 0.) ?clock ?(fresh = true)
      ~base_seq ~on_sync sink =
    let t =
      {
        sink;
        fsync_batch;
        fsync_interval_s;
        clock;
        on_sync;
        next_seq = base_seq;
        appended = 0;
        syncs = 0;
        bytes = 0;
        dirty = 0;
        last_sync = (match clock with Some c -> c () | None -> 0.);
        pending = [];
      }
    in
    if fresh then begin
      let h = header ~magic:wal_magic ~base_seq in
      sink.write h;
      t.bytes <- t.bytes + String.length h
    end;
    t

  let do_sync t =
    t.sink.sync ();
    t.syncs <- t.syncs + 1;
    t.dirty <- 0;
    (match t.clock with Some c -> t.last_sync <- c () | None -> ());
    t.on_sync ()

  let append t r =
    let bytes = encode_record r in
    t.sink.write bytes;
    t.bytes <- t.bytes + String.length bytes;
    t.next_seq <- t.next_seq + 1;
    t.appended <- t.appended + 1;
    t.dirty <- t.dirty + 1;
    if t.fsync_batch > 0 && t.dirty >= t.fsync_batch then do_sync t

  let note_outcome t ~txn outcome = t.pending <- (txn, outcome) :: t.pending

  let log_steps t n =
    if n > 0 then append t (Steps n);
    let outcomes = List.rev t.pending in
    t.pending <- [];
    List.iter (fun (txn, outcome) -> append t (Outcome { txn; outcome })) outcomes

  let tick t =
    match t.clock with
    | Some c
      when t.dirty > 0 && t.fsync_interval_s > 0.
           && c () -. t.last_sync >= t.fsync_interval_s ->
        do_sync t
    | _ -> ()

  let flush t =
    log_steps t 0;
    if t.dirty > 0 then do_sync t

  let next_seq t = t.next_seq
  let appended t = t.appended
  let syncs t = t.syncs
  let bytes_written t = t.bytes
end

(* ----- snapshots ----- *)

type snapshot = {
  sn_next_seq : int;
  sn_meta : record;
  sn_events : record list;
  sn_sg : record;
  sn_counts : record;
}

let encode_snapshot sn =
  let b = Buffer.create 4096 in
  Buffer.add_string b (header ~magic:snap_magic ~base_seq:sn.sn_next_seq);
  let add r = Buffer.add_string b (encode_record r) in
  add sn.sn_meta;
  List.iter add sn.sn_events;
  add sn.sn_sg;
  add sn.sn_counts;
  Buffer.contents b

let decode_snapshot s =
  let ( let* ) = Result.bind in
  let* sc = scan ~magic:snap_magic s in
  match sc.sc_tail with
  | Torn { why; _ } ->
      (* Snapshots are written whole to a temp file and renamed into
         place, so a damaged tail is corruption, not a crash artifact. *)
      Error ("corrupt snapshot: " ^ why)
  | Clean -> (
      match sc.sc_records with
      | (Meta _ as meta) :: rest -> (
          let rec split acc = function
            | [ (Sg_state _ as sg); (Counts _ as counts) ] ->
                Ok (List.rev acc, sg, counts)
            | ((Submit _ | Kill _ | Steps _) as ev) :: rest ->
                split (ev :: acc) rest
            | r :: _ ->
                Error
                  (Printf.sprintf "corrupt snapshot: unexpected %s record"
                     (record_name r))
            | [] -> Error "corrupt snapshot: missing sg-state/counts trailer"
          in
          match split [] rest with
          | Ok (events, sg, counts) ->
              Ok
                {
                  sn_next_seq = sc.sc_base_seq;
                  sn_meta = meta;
                  sn_events = events;
                  sn_sg = sg;
                  sn_counts = counts;
                }
          | Error _ as e -> e)
      | _ -> Error "corrupt snapshot: missing meta record")

let compact records =
  let rec go acc = function
    | [] -> List.rev acc
    | Steps n :: rest -> (
        match acc with
        | Steps m :: acc -> go (Steps (n + m) :: acc) rest
        | _ -> if n > 0 then go (Steps n :: acc) rest else go acc rest)
    | ((Submit _ | Kill _) as r) :: rest -> go (r :: acc) rest
    | (Outcome _ | Meta _ | Sg_state _ | Counts _) :: rest -> go acc rest
  in
  go [] records

(* An incrementally-maintained replay closure: [push] is [compact]
   applied one record at a time, so the retained list never holds two
   adjacent [Steps] and never holds a non-replay record at all.  With
   [e] retained [Submit]/[Kill] records the closure is at most
   [2*e + 1] records long, however many raw records were pushed. *)
module Closure = struct
  type t = {
    mutable rev : record list;  (* compacted, newest first *)
    mutable events : int;  (* retained [Submit]/[Kill] records *)
  }

  let create () = { rev = []; events = 0 }

  let push t r =
    match r with
    | Steps n when n > 0 -> (
        match t.rev with
        | Steps m :: rest -> t.rev <- Steps (n + m) :: rest
        | _ -> t.rev <- r :: t.rev)
    | Steps _ -> ()
    | Submit _ | Kill _ ->
        t.rev <- r :: t.rev;
        t.events <- t.events + 1
    | Outcome _ | Meta _ | Sg_state _ | Counts _ -> ()

  let of_records rs =
    let t = create () in
    List.iter (push t) rs;
    t

  let records t = List.rev t.rev
  let length t = List.length t.rev
  let events t = t.events
end

(* ----- replay ----- *)

type replayable = {
  rp_events : Engine.replay_event list;
  rp_outcomes : (Txn_id.t * outcome) list;
  rp_meta : (record * int) option;
}

let replayable_of_records ~base_seq ~skip_below records =
  let ( let* ) = Result.bind in
  let rec go i events outcomes meta = function
    | [] ->
        Ok
          {
            rp_events = List.rev events;
            rp_outcomes = List.rev outcomes;
            rp_meta = meta;
          }
    | r :: rest ->
        let seq = base_seq + i in
        if seq < skip_below then go (i + 1) events outcomes meta rest
        else
          let* events, outcomes, meta =
            match r with
            | Meta _ ->
                Ok
                  ( events,
                    outcomes,
                    match meta with None -> Some (r, seq) | some -> some )
            | Submit { program; _ } -> (
                match Nt_workload.Program_io.parse_program_text program with
                | Ok p -> Ok (`Submit p :: events, outcomes, meta)
                | Error e ->
                    (* The checksum passed, so this is a writer bug, not
                       bit rot: refuse rather than guess. *)
                    Error
                      (Printf.sprintf "record %d: unparsable program: %s" seq e))
            | Kill { txn } -> Ok (`Kill txn :: events, outcomes, meta)
            | Steps n -> Ok (`Steps n :: events, outcomes, meta)
            | Outcome { txn; outcome } ->
                Ok (events, (txn, outcome) :: outcomes, meta)
            | Sg_state _ | Counts _ ->
                Error
                  (Printf.sprintf "record %d: snapshot-only %s record in a log"
                     seq (record_name r))
          in
          go (i + 1) events outcomes meta rest
  in
  go 0 [] [] None records

let check_outcomes state outcomes =
  let rec go n = function
    | [] -> Ok n
    | (txn, recorded) :: rest -> (
        let fail what =
          Error
            (Printf.sprintf "outcome of %s not reproduced: %s"
               (Txn_id.to_string txn) what)
        in
        match (recorded, state txn) with
        | Committed v, Engine.Committed v' ->
            let v' = Value.to_string v' in
            if String.equal v v' then go (n + 1) rest
            else
              fail (Printf.sprintf "logged commit value %s, replayed %s" v v')
        | Aborted _, Engine.Aborted _ -> go (n + 1) rest
        | Committed _, Engine.Aborted _ -> fail "logged committed, replayed aborted"
        | Aborted _, Engine.Committed _ -> fail "logged aborted, replayed committed"
        | _, Engine.Running -> fail "still running after replay"
        | _, Engine.Pending -> fail "still pending after replay"
        | _, Engine.Unknown -> fail "unknown to the replayed engine")
  in
  go 0 outcomes

(* ----- monitor-graph snapshots (dense interning) ----- *)

let sg_state_of_graph g =
  let nodes =
    Array.of_list (List.map Txn_id.to_string (Nt_sg.Graph.nodes g))
  in
  let index = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun i n -> Hashtbl.replace index n i) nodes;
  let id t = Hashtbl.find index (Txn_id.to_string t) in
  let edges =
    List.rev
      (Nt_sg.Graph.fold_edges g (fun acc u v -> (id u, id v) :: acc) [])
  in
  Sg_state { nodes; edges }

let check_sg_state r g =
  match r with
  | Sg_state { nodes; edges } ->
      let want_nodes =
        List.sort_uniq String.compare (Array.to_list nodes)
      in
      let have_nodes =
        List.sort_uniq String.compare
          (List.map Txn_id.to_string (Nt_sg.Graph.nodes g))
      in
      if want_nodes <> have_nodes then
        Error
          (Printf.sprintf "snapshot SG has %d nodes, replayed monitor %d"
             (List.length want_nodes) (List.length have_nodes))
      else
        let name (u, v) = (nodes.(u), nodes.(v)) in
        let want_edges =
          List.sort_uniq compare (List.map name edges)
        in
        let have_edges =
          List.sort_uniq compare
            (List.map
               (fun (u, v) -> (Txn_id.to_string u, Txn_id.to_string v))
               (Nt_sg.Graph.edges g))
        in
        if want_edges <> have_edges then
          Error
            (Printf.sprintf "snapshot SG has %d edges, replayed monitor %d"
               (List.length want_edges) (List.length have_edges))
        else Ok ()
  | r ->
      Error
        (Printf.sprintf "expected an sg-state record, got %s" (record_name r))
