(** A mutex-guarded MPSC mailbox (producers: the serving thread;
    consumer: one shard worker). *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

val pop : block:bool -> 'a t -> 'a list
(** Every queued message, oldest first.  With [block:true], parks until
    at least one message arrives. *)
