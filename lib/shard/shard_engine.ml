open Nt_base
open Nt_sg
open Nt_net

type outcome =
  | Done_committed of Value.t
  | Done_aborted of Admission.veto option

type stats = {
  sh_submitted : int;
  sh_committed : int;
  sh_aborted : int;
  sh_vetoed : int;
  sh_live : int;
  sh_actions : int;
  sh_steps : int;
  sh_orphans : int;
  sh_doomed : int;
  sh_alarms : int;
  sh_cycle_alarms : int;
  sh_sg_nodes : int;
  sh_sg_edges : int;
  sh_sg_reorders : int;
}

let zero_stats =
  {
    sh_submitted = 0;
    sh_committed = 0;
    sh_aborted = 0;
    sh_vetoed = 0;
    sh_live = 0;
    sh_actions = 0;
    sh_steps = 0;
    sh_orphans = 0;
    sh_doomed = 0;
    sh_alarms = 0;
    sh_cycle_alarms = 0;
    sh_sg_nodes = 0;
    sh_sg_edges = 0;
    sh_sg_reorders = 0;
  }

type t = {
  shard : int;
  spine : Spine.t;
  gating : bool;
  mutable eng : Engine.t option;  (* set once, at the end of [create] *)
  prefixes : (int, int list) Hashtbl.t;  (* local top index -> merged prefix *)
  by_prefix : (int list, Txn_id.t) Hashtbl.t;
  mutable buf : (int * Action.t) list;  (* merged actions, newest first *)
  mutable on_report :
    g:int -> piece:int option -> seq:int -> outcome -> unit;
  mutable stats_cell : stats;
}

let the_engine t =
  match t.eng with Some e -> e | None -> assert false

let prefix_of t u =
  match Txn_id.path u with
  | j :: _ -> Hashtbl.find_opt t.prefixes j
  | [] -> None

let remap_txn t u =
  match Txn_id.path u with
  | [] -> u
  | j :: rest -> (
      match Hashtbl.find_opt t.prefixes j with
      | Some pre -> Txn_id.of_path (pre @ rest)
      | None -> u)

let remap_action t a =
  let f = remap_txn t in
  match a with
  | Action.Request_create u -> Action.Request_create (f u)
  | Action.Create u -> Action.Create (f u)
  | Action.Request_commit (u, v) -> Action.Request_commit (f u, v)
  | Action.Commit u -> Action.Commit (f u)
  | Action.Abort u -> Action.Abort (f u)
  | Action.Report_commit (u, v) -> Action.Report_commit (f u, v)
  | Action.Report_abort u -> Action.Report_abort (f u)
  | Action.Inform_commit (x, u) -> Action.Inform_commit (x, f u)
  | Action.Inform_abort (x, u) -> Action.Inform_abort (x, f u)

let local_done t u out seq =
  match prefix_of t u with
  | Some [ g ] ->
      Spine.note_complete t.spine g ~seq;
      t.on_report ~g ~piece:None ~seq out
  | Some [ g; k ] -> t.on_report ~g ~piece:(Some k) ~seq out
  | _ -> ()

let tap t a =
  match a with
  | Action.Request_create u when Txn_id.depth u = 1 && prefix_of t u <> None ->
      (* The router already synthesized this request at dispatch, in
         merged name order; the local scheduler reaches it at its own
         pace, which across shards would scramble the sibling order the
         merged trace's affects relation must respect. *)
      ()
  | _ -> (
      let m = remap_action t a in
      let seq = Spine.stamp t.spine in
      t.buf <- (seq, m) :: t.buf;
      match a with
      | Action.Report_commit (u, v) when Txn_id.depth u = 1 ->
          local_done t u (Done_committed v) seq
      | Action.Report_abort u when Txn_id.depth u = 1 ->
          let veto = Admission.veto_of (Engine.admission (the_engine t)) u in
          local_done t u (Done_aborted veto) seq
      | _ -> ())

(* The merged top-level endpoint of a local depth-1 transaction. *)
let merged_g t u =
  match prefix_of t u with Some (g :: _) -> Some g | _ -> None

let witness_string t prov =
  let r (e : Monitor.endpoint) =
    { e with Monitor.who = remap_txn t e.Monitor.who }
  in
  Format.asprintf "shard %d: %a" t.shard Monitor.pp_provenance
    { prov with Monitor.before = r prov.Monitor.before;
                after = r prov.Monitor.after }

let extra_gate t u =
  if Txn_id.depth u <> 1 then true
    (* Inner commits cannot add top-level edges: an operation is
       visible to [T0] only once every ancestor, the top included, has
       committed. *)
  else
    let eng = the_engine t in
    let adm = Engine.admission eng in
    let pro = Monitor.prospective_commit_edges (Admission.monitor adm) u in
    let tops =
      List.filter_map
        (fun (a, b, prov) ->
          if Txn_id.depth a = 1 && Txn_id.depth b = 1 then
            match (merged_g t a, merged_g t b) with
            | Some ga, Some gb when ga <> gb ->
                Some (ga, gb, witness_string t prov)
            | _ -> None
          else None)
        pro
    in
    match tops with
    | [] -> true
    | edges -> (
        match merged_g t u with
        | None -> true
        | Some g -> (
            match Spine.gate t.spine ~top:g ~edges with
            | Spine.Admitted -> true
            | Spine.Vetoed { cycle; witness } ->
                Admission.record_veto adm u ~cycle ~witness;
                false))

let create ?policy ?inform_policy ?abort_prob ?max_steps ?obs ?mode
    ?(gating = true) ?max_program ~spine ~partition ~shard ~seed factory =
  let t =
    {
      shard;
      spine;
      gating;
      eng = None;
      prefixes = Hashtbl.create 64;
      by_prefix = Hashtbl.create 64;
      buf = [];
      on_report = (fun ~g:_ ~piece:_ ~seq:_ _ -> ());
      stats_cell = zero_stats;
    }
  in
  let eng =
    Engine.create ?policy ?inform_policy ?abort_prob ?max_steps ?obs ?mode
      ~admission:gating ?max_program ~on_action:(tap t)
      ~extra_gate:(fun u -> (not t.gating) || extra_gate t u)
      ~seed
      (Partition.objects_of partition shard)
      factory
  in
  t.eng <- Some eng;
  t

let set_on_report t f = t.on_report <- f

let submit t ~prefix prog =
  let eng = the_engine t in
  match Engine.submit eng prog with
  | Error _ as e -> e
  | Ok txn ->
      (match Txn_id.last_index txn with
      | Some j ->
          Hashtbl.replace t.prefixes j prefix;
          Hashtbl.replace t.by_prefix prefix txn
      | None -> assert false);
      Ok txn

let kill_prefix t prefix =
  match Hashtbl.find_opt t.by_prefix prefix with
  | Some txn -> ignore (Engine.kill (the_engine t) txn)
  | None -> ()

let step t = Engine.step (the_engine t)
let drain ?burst t = Engine.drain ?burst (the_engine t)
let finish t = Engine.finish (the_engine t)
let buffer t = t.buf
let shard t = t.shard
let engine t = the_engine t

let snapshot t =
  let e = the_engine t in
  let g = Monitor.graph (Admission.monitor (Engine.admission e)) in
  {
    sh_submitted = Engine.submitted e;
    sh_committed = Engine.committed_top e;
    sh_aborted = Engine.aborted_top e;
    sh_vetoed = Engine.vetoed e;
    sh_live = Engine.live_top e;
    sh_actions = Engine.actions_so_far e;
    sh_steps = Engine.steps_so_far e;
    sh_orphans = Engine.orphan_aborts e;
    sh_doomed = Engine.doomed_count e;
    sh_alarms = Engine.alarms e;
    sh_cycle_alarms = Engine.cycle_alarms e;
    sh_sg_nodes = Graph.n_nodes g;
    sh_sg_edges = Graph.n_edges g;
    sh_sg_reorders = Graph.reorders g;
  }

let publish t = t.stats_cell <- snapshot t
let published t = t.stats_cell
