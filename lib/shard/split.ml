open Nt_serial

let rec project part ~shard prog =
  match prog with
  | Program.Access (x, _) ->
      if Partition.shard_of part x = shard then Some prog else None
  | Program.Node (comb, children) -> (
      match List.filter_map (project part ~shard) children with
      | [] -> None
      | kept -> Some (Program.Node (comb, kept)))

let pieces part prog =
  List.init (Partition.shards part) (fun s ->
      match project part ~shard:s prog with
      | Some p -> [ (s, p) ]
      | None -> [])
  |> List.concat

let merged ps = Program.Node (Program.Par, ps)
