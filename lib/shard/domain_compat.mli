(** Portable worker spawning for the sharded service.

    On OCaml 5 a worker is a real domain ([Domain.spawn]) and shards run
    in parallel; on 4.x the same interface is served by system threads —
    semantically identical (every shared structure is mutex- or
    atomic-guarded either way) but time-sliced on one core, so the
    scaling bench only means something on 5.x.  {!parallelism_available}
    lets callers report which world they are in. *)

type 'a handle

val spawn : (unit -> 'a) -> 'a handle
val join : 'a handle -> 'a
(** Waits for the worker and returns its result; re-raises the worker's
    uncaught exception, if any. *)

val parallelism_available : bool
(** [true] iff workers are domains that can run in parallel. *)

val recommended_worker_count : unit -> int
(** An upper bound worth spawning: [Domain.recommended_domain_count]
    on OCaml 5, [1] on 4.x. *)
