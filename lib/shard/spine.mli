(** The cross-shard commit gate: a coordinator-held top-level
    serialization graph over merged transaction names.

    Under object partitioning, every {e conflict} edge of the merged
    system's SG joins two transactions that touched the same object —
    the same shard — so each shard's local monitor materializes it
    first, and the shard {e ships} its top-level projection here as a
    [(from, to, witness)] triple at the commit that creates it.  The
    spine never stores precedes edges explicitly: the top-level
    precedes relation is the dense time rail [u -> v iff u reported
    before v was requested], which the global sequence stamps encode
    exactly — {!note_complete}[ u < ]{!note_submit}[ v].  Explicit
    conflict edges plus that implicit rail reconstruct the merged
    top-level SG precisely (the determinism argument and the proof
    sketch live in [doc/sharding.mld]).

    {!gate} is the two-phase decision: a shard about to perform a
    commit whose prospective edge set contains top-level edges presents
    them here; the spine answers whether adding them to the global
    graph closes a cycle — vetoing exactly the cycle-closing commits,
    as the local gate does for local cycles — and, on admission,
    installs them atomically (one mutex-guarded critical section, so
    check and install are indivisible).

    All merged top-level transactions are registered here as dense
    integers [g] (the merged name is [T0.g]); stamps come from one
    global atomic counter that also orders the merged trace, which is
    what makes the harness's offline judgement and this online gate
    agree on the precedes relation. *)

open Nt_base

type t

val create : unit -> t

val stamp : t -> int
(** Next global sequence number (atomic fetch-and-add): the total
    order of the merged trace. *)

val register : t -> int
(** Allocate the next merged top-level transaction [g]. *)

val note_submit : t -> int -> seq:int -> unit
(** [T0.g]'s [Request_create] carries trace stamp [seq]. *)

val note_complete : t -> int -> seq:int -> unit
(** [T0.g]'s report ([Report_commit] or [Report_abort] — aborted tops
    are rail sources too) carries trace stamp [seq]. *)

val submit_seq : t -> int -> int option
val complete_seq : t -> int -> int option

type verdict =
  | Admitted
  | Vetoed of { cycle : Txn_id.t list; witness : string }

val gate : t -> top:int -> edges:(int * int * string) list -> verdict
(** [gate t ~top ~edges] — would installing [edges] (each incident to
    [top]; the witness string explains the underlying conflict) close
    a cycle in the global graph (explicit edges + time rail)?
    [Admitted] installs them; [Vetoed] installs nothing and returns
    the would-be cycle with an edge-by-edge witness chain.  Raises
    [Invalid_argument] if [top] was never submit-stamped. *)

val checks : t -> int
val vetoes : t -> int
val edge_count : t -> int
(** Distinct explicit cross-checked conflict edges installed. *)

val node_count : t -> int
