open Nt_base
open Nt_spec
open Nt_serial

type dispatch = { d_shard : int; d_prefix : int list; d_prog : Program.t }

type plan = { p_g : int; p_dispatches : dispatch list; p_cross : bool }

type result_view =
  | Pending
  | Committed of Value.t
  | Aborted of Nt_net.Admission.veto option

type entry =
  | Plain of { shard : int; mutable outcome : Shard_engine.outcome option }
  | Cross of {
      shards : int array;  (* piece index -> shard *)
      values : Value.t option array;
      mutable remaining : int;
      mutable value : Value.t option;  (* G's value once synthesized *)
    }

type t = {
  part : Partition.t;
  spine : Spine.t;
  mu : Mutex.t;
  entries : (int, entry) Hashtbl.t;
  progs : (int, Program.t) Hashtbl.t;  (* the merged forest, per g *)
  mutable synth : (int * Action.t) list;  (* synthesized G actions *)
  max_program : int;
  mutable n_local : int;
  mutable n_cross : int;
}

let create ?(max_program = 10_000) part spine =
  {
    part;
    spine;
    mu = Mutex.create ();
    entries = Hashtbl.create 256;
    progs = Hashtbl.create 256;
    synth = [];
    max_program;
    n_local = 0;
    n_cross = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* Same checks the engine applies, against the full table — so a
   cross-shard program is accepted or rejected atomically, before any
   piece reaches a shard. *)
let validate t prog =
  if Program.size prog > t.max_program then
    Error
      (Printf.sprintf "program too large (%d names; limit %d)"
         (Program.size prog) t.max_program)
  else
    let objects = Partition.objects t.part in
    let rec check = function
      | Program.Access (x, op) -> (
          match
            List.find_opt (fun (x', _) -> Obj_id.equal x x') objects
          with
          | None -> Error ("undeclared object " ^ Obj_id.name x)
          | Some (_, dt) -> (
              match dt.Datatype.apply dt.Datatype.init op with
              | _ -> Ok ()
              | exception Datatype.Unsupported _ ->
                  Error
                    (Printf.sprintf "operation %s not offered by %s (%s)"
                       (Datatype.op_to_string op) (Obj_id.name x)
                       dt.Datatype.dt_name)))
      | Program.Node (_, children) ->
          List.fold_left
            (fun acc c -> Result.bind acc (fun () -> check c))
            (Ok ()) children
    in
    check prog

let top_txn g = Txn_id.child Txn_id.root g

let plan t prog =
  match validate t prog with
  | Error _ as e -> e
  | Ok () -> (
      match Footprint.classify t.part prog with
      | Footprint.Local s ->
          let g = Spine.register t.spine in
          locked t (fun () ->
              Hashtbl.replace t.entries g (Plain { shard = s; outcome = None });
              Hashtbl.replace t.progs g prog;
              t.n_local <- t.n_local + 1;
              (* The merged [T0] requests its children in name order, at
                 dispatch — the engines issue their local counterparts
                 lazily, in whatever order their schedulers reach them,
                 which would let a later-named top complete before an
                 earlier-named one was even requested and put the
                 merged trace's affects relation at odds with the
                 pseudotime (dfs) sibling order.  The shard tap drops
                 the local event; this stamp is the one the merged
                 trace and the spine's rail both use. *)
              let s1 = Spine.stamp t.spine in
              t.synth <- (s1, Action.Request_create (top_txn g)) :: t.synth;
              Spine.note_submit t.spine g ~seq:s1);
          Ok { p_g = g; p_dispatches = [ { d_shard = s; d_prefix = [ g ]; d_prog = prog } ]; p_cross = false }
      | Footprint.Cross _ ->
          let pieces = Split.pieces t.part prog in
          let g = Spine.register t.spine in
          locked t (fun () ->
              let n = List.length pieces in
              Hashtbl.replace t.entries g
                (Cross
                   {
                     shards = Array.of_list (List.map fst pieces);
                     values = Array.make n None;
                     remaining = n;
                     value = None;
                   });
              Hashtbl.replace t.progs g (Split.merged (List.map snd pieces));
              t.n_cross <- t.n_cross + 1;
              (* The merged system's [T0] requests the par-of-pieces
                 node at dispatch: stamp its creation before any piece
                 can act, which also anchors the spine's rail — and the
                 node itself requests its pieces right away, in piece
                 order, for the same affects-consistency reason as the
                 plain case above (the local engines' requests for the
                 piece roots are dropped by the shard taps). *)
              let s1 = Spine.stamp t.spine in
              t.synth <- (s1, Action.Request_create (top_txn g)) :: t.synth;
              Spine.note_submit t.spine g ~seq:s1;
              let s2 = Spine.stamp t.spine in
              t.synth <- (s2, Action.Create (top_txn g)) :: t.synth;
              List.iteri
                (fun k _ ->
                  let sk = Spine.stamp t.spine in
                  t.synth <-
                    (sk, Action.Request_create (Txn_id.child (top_txn g) k))
                    :: t.synth)
                pieces);
          Ok
            {
              p_g = g;
              p_dispatches =
                List.mapi
                  (fun k (s, p) ->
                    { d_shard = s; d_prefix = [ g; k ]; d_prog = p })
                  pieces;
              p_cross = true;
            })

(* With the router lock held: all pieces have reported, so the merged
   node commits — its value pairs each piece's fate, uncommitted pieces
   as [Pair (false, Unit)], exactly the shape the differential oracle
   replays for a [Par] node with aborted children. *)
let synthesize_commit t g values =
  let v =
    Value.List
      (Array.to_list
         (Array.map
            (function
              | Some v -> Value.Pair (Value.Bool true, v)
              | None -> Value.Pair (Value.Bool false, Value.Unit))
            values))
  in
  let u = top_txn g in
  let s1 = Spine.stamp t.spine in
  t.synth <- (s1, Action.Request_commit (u, v)) :: t.synth;
  let s2 = Spine.stamp t.spine in
  t.synth <- (s2, Action.Commit u) :: t.synth;
  let s3 = Spine.stamp t.spine in
  t.synth <- (s3, Action.Report_commit (u, v)) :: t.synth;
  Spine.note_complete t.spine g ~seq:s3;
  v

let note_report t ~g ~piece ~seq:_ out =
  locked t (fun () ->
      match (Hashtbl.find_opt t.entries g, piece) with
      | Some (Plain p), None -> p.outcome <- Some out
      | Some (Cross c), Some k ->
          (match out with
          | Shard_engine.Done_committed v -> c.values.(k) <- Some v
          | Shard_engine.Done_aborted _ -> ());
          c.remaining <- c.remaining - 1;
          if c.remaining = 0 then c.value <- Some (synthesize_commit t g c.values)
      | _ -> ())

(* A shard refused a routed piece (cannot happen for router-validated
   programs; belt and braces): count it as an aborted piece so the
   merged transaction still completes. *)
let note_dispatch_failed t ~g ~piece =
  note_report t ~g ~piece ~seq:0 (Shard_engine.Done_aborted None)

let result t g =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries g with
      | None -> Pending
      | Some (Plain { outcome = Some (Shard_engine.Done_committed v); _ }) ->
          Committed v
      | Some (Plain { outcome = Some (Shard_engine.Done_aborted veto); _ }) ->
          Aborted veto
      | Some (Plain { outcome = None; _ }) -> Pending
      | Some (Cross { value = Some v; _ }) -> Committed v
      | Some (Cross _) -> Pending)

let kill_prefixes t g =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries g with
      | None -> []
      | Some (Plain { shard; _ }) -> [ (shard, [ g ]) ]
      | Some (Cross { shards; _ }) ->
          Array.to_list (Array.mapi (fun k s -> (s, [ g; k ])) shards))

let submitted t = locked t (fun () -> Hashtbl.length t.entries)
let cross_count t = locked t (fun () -> t.n_cross)
let local_count t = locked t (fun () -> t.n_local)

let pending t =
  locked t (fun () ->
      Hashtbl.fold
        (fun g e acc ->
          match e with
          | Plain { outcome = None; _ } | Cross { value = None; _ } -> g :: acc
          | _ -> acc)
        t.entries [])

let counts t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e (c, a) ->
          match e with
          | Plain { outcome = Some (Shard_engine.Done_committed _); _ } ->
              (c + 1, a)
          | Plain { outcome = Some (Shard_engine.Done_aborted _); _ } ->
              (c, a + 1)
          | Cross { value = Some _; _ } -> (c + 1, a)
          | _ -> (c, a))
        t.entries (0, 0))

let merged_forest t =
  locked t (fun () ->
      List.init (Hashtbl.length t.progs) (fun g -> Hashtbl.find t.progs g))

let merged_trace t buffers =
  let synth = locked t (fun () -> t.synth) in
  let all = List.concat (synth :: buffers) in
  let sorted =
    List.sort (fun (s1, _) (s2, _) -> compare (s1 : int) s2) all
  in
  Trace.of_list (List.map snd sorted)
