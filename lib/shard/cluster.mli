(** The deterministic, single-threaded shard ensemble.

    Exactly the objects the live {!Service} runs — same {!Partition},
    {!Spine}, {!Router}, {!Shard_engine} — but stepped inline by the
    caller, one shard at a time.  Because every shard engine is a pure
    function of its seed and call sequence, and the spine's stamps are
    drawn in call order, a fixed interleaving of {!submit}, {!kill}
    and {!step_shard} calls reproduces the identical merged history —
    which is what lets [Check.serve_sharded] drive the whole ensemble
    from one splittable [Rng] and judge the result offline. *)

open Nt_base
open Nt_spec
open Nt_serial
open Nt_generic
open Nt_obs

type t

val create :
  ?policy:Runtime.policy ->
  ?inform_policy:Runtime.inform_policy ->
  ?abort_prob:float ->
  ?max_steps:int ->
  ?obs:Obs.t ->
  ?mode:Nt_sg.Sg.conflict_mode ->
  ?gating:bool ->
  ?key:(Obj_id.t -> string) ->
  ?max_program:int ->
  shards:int ->
  seed:int ->
  (Obj_id.t * Datatype.t) list ->
  Nt_gobj.Gobj.factory ->
  t
(** Shard [s] runs on [seed + s * 1000003]. *)

val submit : t -> Program.t -> (int, string) result
(** Route, dispatch, return the merged id [g]. *)

val kill : t -> int -> unit
(** Kill every piece of submission [g]. *)

val step_shard : t -> int -> [ `Progress | `Quiescent | `Truncated ]
val drain : t -> unit
val quiescent : t -> bool
val truncated : t -> bool

val result : t -> int -> Router.result_view

val finish : t -> Runtime.result * Program.t list * Schema.t
(** Settle every shard and assemble the merged run: stamp-sorted
    merged trace, summed stats, merged top counts, the par-of-pieces
    forest and its schema — directly judgeable by the offline
    oracles. *)

val shards : t -> int
val engine : t -> int -> Shard_engine.t
val spine : t -> Spine.t
val partition : t -> Partition.t
val router : t -> Router.t
val vetoed : t -> int
(** Summed local veto counts (spine vetoes included — they are
    recorded on the owning shard's controller). *)
