open Nt_base
open Nt_spec

type t = {
  n : int;
  key : Obj_id.t -> string;
  all : (Obj_id.t * Datatype.t) list;
  per_shard : (Obj_id.t * Datatype.t) list array;
}

let default_key x =
  let s = Obj_id.name x in
  match String.rindex_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* [Hashtbl.hash] diffuses the low bits of short similar strings
   poorly ("x0" and "x1" agree mod 2), and placement takes the hash
   mod a small shard count — so scramble it first. *)
let mix h =
  let h = h lxor (h lsr 16) in
  let h = h * 0x45d9f3b land 0x3FFFFFFF in
  let h = h lxor (h lsr 13) in
  let h = h * 0x45d9f3b land 0x3FFFFFFF in
  h lxor (h lsr 16)

let create ?(key = default_key) ~shards objects =
  if shards < 1 then invalid_arg "Partition.create: shards < 1";
  let shard_of x = mix (Hashtbl.hash (key x)) mod shards in
  let per_shard = Array.make shards [] in
  List.iter
    (fun (x, dt) ->
      let s = shard_of x in
      per_shard.(s) <- (x, dt) :: per_shard.(s))
    objects;
  {
    n = shards;
    key;
    all = objects;
    per_shard = Array.map List.rev per_shard;
  }

let shards t = t.n
let shard_of t x = mix (Hashtbl.hash (t.key x)) mod t.n
let objects_of t s = t.per_shard.(s)
let objects t = t.all
