(** Classifying, naming and accounting for submitted programs.

    The router owns the merged name space: every accepted program gets
    the next dense merged top id [g] ([T0.g] in the merged forest).  A
    single-shard program dispatches whole, under prefix [[g]]; a
    cross-shard program splits ({!Split.pieces}) into per-shard pieces
    under prefixes [[g; k]], with the merged forest holding
    [Node (Par, pieces)] in its place and the router synthesizing the
    merged node's create/commit actions around the pieces' lifetime.

    The router is thread-safe (one internal mutex); {!note_report} is
    called from shard threads' action taps, everything else from
    whichever thread serves clients. *)

open Nt_base
open Nt_serial

type t

type dispatch = { d_shard : int; d_prefix : int list; d_prog : Program.t }
type plan = { p_g : int; p_dispatches : dispatch list; p_cross : bool }

type result_view =
  | Pending
  | Committed of Value.t
  | Aborted of Nt_net.Admission.veto option

val create : ?max_program:int -> Partition.t -> Spine.t -> t

val plan : t -> Program.t -> (plan, string) result
(** Validate against the full object table (atomically — no piece is
    dispatched for a rejected program), classify, allocate [g],
    register it with the spine, and for a cross-shard program stamp the
    merged node's [Request_create]/[Create] into the synthetic action
    stream.  The caller performs the dispatches. *)

val note_report :
  t -> g:int -> piece:int option -> seq:int -> Shard_engine.outcome -> unit
(** Wire this as every shard's {!Shard_engine.set_on_report}.  The last
    piece report synthesizes the merged node's commit. *)

val note_dispatch_failed : t -> g:int -> piece:int option -> unit

val result : t -> int -> result_view
(** A cross-shard program reports [Committed] with the pair-per-piece
    value (vetoed or killed pieces pair as [(false, Unit)]), exactly as
    a [Par] top with aborted children would. *)

val kill_prefixes : t -> int -> (int * int list) list
(** The (shard, prefix) pairs to kill for submission [g]. *)

val submitted : t -> int
val cross_count : t -> int
val local_count : t -> int
val pending : t -> int list
val counts : t -> int * int
(** Merged [(committed, aborted)] top counts. *)

val merged_forest : t -> Program.t list

val merged_trace : t -> (int * Action.t) list list -> Trace.t
(** Sort the shards' stamped buffers plus the synthetic stream into the
    one merged history. *)
