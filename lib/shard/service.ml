open Nt_serial
open Nt_generic
open Nt_obs

type msg =
  | Submit of { g : int; prefix : int list; prog : Program.t }
  | Kill of int list
  | Stop

type t = {
  part : Partition.t;
  sp : Spine.t;
  rt : Router.t;
  engines : Shard_engine.t array;
  mboxes : msg Mailbox.t array;
  handles : unit Domain_compat.handle array;
  mutable stopped : bool;
}

let worker rt se mbox notify () =
  let eng = Shard_engine.engine se in
  let completed () =
    Nt_net.Engine.committed_top eng + Nt_net.Engine.aborted_top eng
  in
  let running = ref true in
  let idle = ref false in
  while !running do
    (* Quiescence with live transactions is transient — a blocked
       access becomes retryable only on a later drain — so the worker
       may park on the mailbox only when the engine is truly empty;
       otherwise it backs off and re-drains. *)
    let may_block = !idle && Nt_net.Engine.live_top eng = 0 in
    if !idle && not may_block then Thread.delay 0.0005;
    let msgs = Mailbox.pop ~block:may_block mbox in
    List.iter
      (function
        | Submit { g; prefix; prog } -> (
            match Shard_engine.submit se ~prefix prog with
            | Ok _ -> ()
            | Error _ ->
                Router.note_dispatch_failed rt ~g
                  ~piece:(match prefix with [ _; k ] -> Some k | _ -> None))
        | Kill prefix -> Shard_engine.kill_prefix se prefix
        | Stop -> running := false)
      msgs;
    if !running then begin
      let before = completed () in
      (match Shard_engine.drain ~burst:1024 se with
      | `Progress -> idle := false
      | `Quiescent | `Truncated -> idle := true);
      Shard_engine.publish se;
      if completed () > before then notify ()
    end
  done;
  Shard_engine.publish se

let start ?policy ?inform_policy ?abort_prob ?max_steps ?mode ?gating ?key
    ?max_program ?(obs_for = fun _ -> Obs.null) ?(notify = fun () -> ())
    ~shards ~seed objects factory =
  let part = Partition.create ?key ~shards objects in
  let sp = Spine.create () in
  let rt = Router.create ?max_program part sp in
  let engines =
    Array.init shards (fun s ->
        Shard_engine.create ?policy ?inform_policy ?abort_prob ?max_steps
          ~obs:(obs_for s) ?mode ?gating ?max_program ~spine:sp
          ~partition:part ~shard:s
          ~seed:(seed + (s * 1000003))
          factory)
  in
  Array.iter (fun e -> Shard_engine.set_on_report e (Router.note_report rt)) engines;
  let mboxes = Array.init shards (fun _ -> Mailbox.create ()) in
  let handles =
    Array.mapi
      (fun s se -> Domain_compat.spawn (worker rt se mboxes.(s) notify))
      engines
  in
  { part; sp; rt; engines; mboxes; handles; stopped = false }

let submit t prog =
  if t.stopped then Error "service stopped"
  else
    match Router.plan t.rt prog with
    | Error _ as e -> e
    | Ok { Router.p_g; p_dispatches; _ } ->
        List.iter
          (fun { Router.d_shard; d_prefix; d_prog } ->
            Mailbox.push t.mboxes.(d_shard)
              (Submit { g = p_g; prefix = d_prefix; prog = d_prog }))
          p_dispatches;
        Ok p_g

let kill t g =
  List.iter
    (fun (s, prefix) -> Mailbox.push t.mboxes.(s) (Kill prefix))
    (Router.kill_prefixes t.rt g)

let result t g = Router.result t.rt g
let pending t = List.length (Router.pending t.rt)
let stats t = Array.map Shard_engine.published t.engines
let spine t = t.sp
let router t = t.rt
let partition t = t.part
let shards t = Array.length t.engines

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun mb -> Mailbox.push mb Stop) t.mboxes;
    Array.iter Domain_compat.join t.handles
  end

let finish t =
  if not t.stopped then invalid_arg "Service.finish: stop first";
  let locals = Array.map Shard_engine.finish t.engines in
  let stats =
    Array.fold_left
      (fun acc (r : Runtime.result) ->
        let s = r.Runtime.stats in
        {
          Runtime.actions = acc.Runtime.actions + s.Runtime.actions;
          rounds = acc.Runtime.rounds + s.Runtime.rounds;
          blocked_attempts =
            acc.Runtime.blocked_attempts + s.Runtime.blocked_attempts;
          deadlock_aborts =
            acc.Runtime.deadlock_aborts + s.Runtime.deadlock_aborts;
          deadlock_cycles =
            acc.Runtime.deadlock_cycles + s.Runtime.deadlock_cycles;
          injected_aborts =
            acc.Runtime.injected_aborts + s.Runtime.injected_aborts;
          truncated = acc.Runtime.truncated || s.Runtime.truncated;
        })
      {
        Runtime.actions = 0;
        rounds = 0;
        blocked_attempts = 0;
        deadlock_aborts = 0;
        deadlock_cycles = 0;
        injected_aborts = 0;
        truncated = false;
      }
      locals
  in
  let committed_top, aborted_top = Router.counts t.rt in
  let trace =
    Router.merged_trace t.rt
      (Array.to_list (Array.map Shard_engine.buffer t.engines))
  in
  let forest = Router.merged_forest t.rt in
  let schema = Program.schema_of ~objects:(Partition.objects t.part) forest in
  ({ Runtime.trace; stats; committed_top; aborted_top }, forest, schema)
