(** The live multicore service: one worker (an OCaml 5 domain; a
    system thread on 4.x — see {!Domain_compat}) per shard, each
    owning its {!Shard_engine} and parked on a {!Mailbox} when idle.

    The serving thread plans submissions on the {!Router} and pushes
    piece dispatches into the owning shards' mailboxes; workers apply
    them, step their engines, and report completions through the
    router's thread-safe bookkeeping.  Cross-shard coordination happens
    only inside {!Spine.gate} (one short mutex-guarded critical
    section per edge-bearing commit), so shard-local traffic never
    contends. *)

open Nt_base
open Nt_spec
open Nt_serial
open Nt_generic
open Nt_obs

type t

val start :
  ?policy:Runtime.policy ->
  ?inform_policy:Runtime.inform_policy ->
  ?abort_prob:float ->
  ?max_steps:int ->
  ?mode:Nt_sg.Sg.conflict_mode ->
  ?gating:bool ->
  ?key:(Obj_id.t -> string) ->
  ?max_program:int ->
  ?obs_for:(int -> Obs.t) ->
  ?notify:(unit -> unit) ->
  shards:int ->
  seed:int ->
  (Obj_id.t * Datatype.t) list ->
  Nt_gobj.Gobj.factory ->
  t
(** Spawns the workers.  [obs_for s] supplies shard [s]'s telemetry
    sink (default null).  [notify] fires from worker threads whenever
    submissions complete — a server writes a self-pipe byte there to
    wake its select loop. *)

val submit : t -> Program.t -> (int, string) result
val kill : t -> int -> unit
val result : t -> int -> Router.result_view
val pending : t -> int
(** Submissions not yet complete. *)

val stats : t -> Shard_engine.stats array
(** Last published per-shard counters (cheap, safe from any thread). *)

val spine : t -> Spine.t
val router : t -> Router.t
val partition : t -> Partition.t
val shards : t -> int

val stop : t -> unit
(** Stop and join every worker.  Does not drain: callers wanting a
    clean shutdown wait for {!pending}[ = 0] first.  Idempotent. *)

val finish : t -> Runtime.result * Program.t list * Schema.t
(** Merged run assembly; only legal after {!stop}. *)
