open Nt_base

type node = {
  g : int;
  mutable submit_seq : int;  (* -1 until Request_create *)
  mutable complete_seq : int;  (* -1 until reported *)
  mutable out_edges : (int * string) list;
  mutable in_edges : (int * string) list;
}

type t = {
  mu : Mutex.t;
  seq : int Atomic.t;
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable by_submit : node array;  (* submit-stamped nodes, sorted by stamp *)
  mutable n_submitted : int;
  mutable checks : int;
  mutable vetoes : int;
  mutable edges : int;
}

let dummy =
  { g = -1; submit_seq = -1; complete_seq = -1; out_edges = []; in_edges = [] }

let create () =
  {
    mu = Mutex.create ();
    seq = Atomic.make 0;
    nodes = Array.make 64 dummy;
    n_nodes = 0;
    by_submit = Array.make 64 dummy;
    n_submitted = 0;
    checks = 0;
    vetoes = 0;
    edges = 0;
  }

let stamp t = Atomic.fetch_and_add t.seq 1

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let grow arr n =
  if n < Array.length arr then arr
  else begin
    let bigger = Array.make (max 64 (2 * n)) dummy in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let register t =
  locked t (fun () ->
      let g = t.n_nodes in
      t.nodes <- grow t.nodes g;
      t.nodes.(g) <-
        { g; submit_seq = -1; complete_seq = -1; out_edges = []; in_edges = [] };
      t.n_nodes <- g + 1;
      g)

let node t g =
  if g < 0 || g >= t.n_nodes then invalid_arg "Spine: unregistered transaction"
  else t.nodes.(g)

let note_submit t g ~seq =
  locked t (fun () ->
      let n = node t g in
      if n.submit_seq < 0 then begin
        n.submit_seq <- seq;
        t.by_submit <- grow t.by_submit t.n_submitted;
        (* Stamps are taken before the mutex, so inserts can arrive
           slightly out of stamp order under domains: sift from the
           tail (almost always a plain append). *)
        let i = ref t.n_submitted in
        while !i > 0 && t.by_submit.(!i - 1).submit_seq > seq do
          t.by_submit.(!i) <- t.by_submit.(!i - 1);
          decr i
        done;
        t.by_submit.(!i) <- n;
        t.n_submitted <- t.n_submitted + 1
      end)

let note_complete t g ~seq =
  locked t (fun () ->
      let n = node t g in
      if n.complete_seq < 0 then n.complete_seq <- seq)

let submit_seq t g =
  locked t (fun () ->
      let n = node t g in
      if n.submit_seq < 0 then None else Some n.submit_seq)

let complete_seq t g =
  locked t (fun () ->
      let n = node t g in
      if n.complete_seq < 0 then None else Some n.complete_seq)

type verdict =
  | Admitted
  | Vetoed of { cycle : Txn_id.t list; witness : string }

type label = Explicit of string | Rail

let top_txn g = Txn_id.child Txn_id.root g

let has_edge t a b =
  List.exists (fun (b', _) -> b' = b) t.nodes.(a).out_edges

let install t a b w =
  let na = t.nodes.(a) and nb = t.nodes.(b) in
  na.out_edges <- (b, w) :: na.out_edges;
  nb.in_edges <- (a, w) :: nb.in_edges;
  t.edges <- t.edges + 1

let edge_line t a lbl b =
  let name g = Txn_id.to_string (top_txn g) in
  match lbl with
  | Explicit w -> Printf.sprintf "%s -> %s [%s]" (name a) (name b) w
  | Rail ->
      Printf.sprintf "%s -> %s [rail: %s reported@%d before %s requested@%d]"
        (name a) (name b) (name a)
        t.nodes.(a).complete_seq
        (name b)
        t.nodes.(b).submit_seq

let gate t ~top ~edges =
  locked t (fun () ->
      t.checks <- t.checks + 1;
      let u = node t top in
      if u.submit_seq < 0 then invalid_arg "Spine.gate: top never submitted";
      let seen = Hashtbl.create 8 in
      let fresh =
        List.filter
          (fun (a, b, _) ->
            a <> b
            && (a = top || b = top)
            && (not (Hashtbl.mem seen (a, b)))
            && begin
                 Hashtbl.add seen (a, b) ();
                 not (has_edge t a b)
               end)
          edges
      in
      (* After installation, out-neighbours of [top] would be the fresh
         outgoing edges plus the ones already shipped; a cycle through
         [top] closes on any node with an (installed or fresh) edge back
         into [top], or on any node whose report pre-dates [top]'s
         request (the implicit rail). *)
      let sources =
        List.filter_map
          (fun (a, b, w) -> if a = top then Some (b, Explicit w) else None)
          fresh
        @ List.map (fun (v, w) -> (v, Explicit w)) u.out_edges
      in
      let target = Hashtbl.create 8 in
      List.iter
        (fun (a, b, w) -> if b = top then Hashtbl.replace target a (Explicit w))
        fresh;
      List.iter (fun (v, w) -> Hashtbl.replace target v (Explicit w)) u.in_edges;
      let parent = Hashtbl.create 32 in
      let q = Queue.create () in
      let push p lbl v =
        if v <> top && not (Hashtbl.mem parent v) then begin
          Hashtbl.replace parent v (p, lbl);
          Queue.add v q
        end
      in
      List.iter (fun (v, lbl) -> push top lbl v) sources;
      (* Rail absorption: once some visited node with completion stamp
         [theta] is known, every node requested after [theta] is
         rail-reachable; [by_submit] is stamp-sorted, so those are a
         suffix, consumed monotonically. *)
      let theta = ref max_int and theta_node = ref (-1) in
      let absorb_ptr = ref t.n_submitted in
      let closing = ref None in
      (try
         while not (Queue.is_empty q) do
           let v = Queue.pop q in
           let nv = t.nodes.(v) in
           (match Hashtbl.find_opt target v with
           | Some lbl ->
               closing := Some (v, lbl);
               raise Exit
           | None -> ());
           if nv.complete_seq >= 0 && nv.complete_seq < u.submit_seq then begin
             closing := Some (v, Rail);
             raise Exit
           end;
           List.iter (fun (z, w) -> push v (Explicit w) z) nv.out_edges;
           if nv.complete_seq >= 0 then begin
             if nv.complete_seq < !theta then begin
               theta := nv.complete_seq;
               theta_node := v
             end;
             while
               !absorb_ptr > 0
               && t.by_submit.(!absorb_ptr - 1).submit_seq > !theta
             do
               decr absorb_ptr;
               push !theta_node Rail t.by_submit.(!absorb_ptr).g
             done
           end
         done
       with Exit -> ());
      match !closing with
      | None ->
          List.iter (fun (a, b, w) -> install t a b w) fresh;
          Admitted
      | Some (v, lbl) ->
          t.vetoes <- t.vetoes + 1;
          let rec chain v acc =
            if v = top then acc
            else
              match Hashtbl.find_opt parent v with
              | Some (p, l) -> chain p ((p, l, v) :: acc)
              | None -> acc
          in
          let path = chain v [] in
          let cycle = top :: List.map (fun (_, _, b) -> b) path in
          let lines =
            List.map (fun (a, l, b) -> edge_line t a l b) path
            @ [ edge_line t v lbl top ]
          in
          Vetoed
            {
              cycle = List.map top_txn cycle;
              witness = String.concat "\n" lines;
            })

let checks t = locked t (fun () -> t.checks)
let vetoes t = locked t (fun () -> t.vetoes)
let edge_count t = locked t (fun () -> t.edges)
let node_count t = locked t (fun () -> t.n_nodes)
