open Nt_base
open Nt_serial

let objects prog =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (x, _) ->
      let k = Obj_id.name x in
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.add seen k ();
        Some x
      end)
    (Program.accesses prog)

type classification = Local of int | Cross of int list

let classify part prog =
  let shards =
    objects prog
    |> List.map (Partition.shard_of part)
    |> List.sort_uniq compare
  in
  match shards with
  | [] -> Local 0
  | [ s ] -> Local s
  | many -> Cross many
