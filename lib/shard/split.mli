(** Splitting a cross-shard program into per-shard pieces.

    The projection keeps the [Seq]/[Par] skeleton of the original tree
    and drops subtrees with no access on the target shard; nothing is
    collapsed, so the piece's internal structure — and therefore the
    serialization-graph shape {e below} the piece root — is exactly the
    original program's, restricted to that shard's objects.

    The merged system replaces the original program with
    [Node (Par, pieces)]: ordering constraints {e within} a piece are
    preserved, but a [Seq] edge that crossed a shard boundary degrades
    to concurrent execution.  This is the documented semantic
    relaxation of cross-shard dispatch (see [doc/sharding.mld]); the
    merged history is judged against the par-of-pieces forest, so the
    offline oracles hold the run to exactly the semantics the client
    was given. *)

open Nt_serial

val project : Partition.t -> shard:int -> Program.t -> Program.t option
(** The program restricted to the shard's objects; [None] when no leaf
    lands there. *)

val pieces : Partition.t -> Program.t -> (int * Program.t) list
(** Non-empty projections, in ascending shard order. *)

val merged : Program.t list -> Program.t
(** [Node (Par, pieces)] — the program the merged history is judged
    against. *)
