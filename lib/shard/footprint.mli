(** Static object footprints of programs.

    The router classifies every submitted program by the set of objects
    its AST can touch.  Because a {!Nt_serial.Program.t} names its
    accesses syntactically — there is no data-dependent object choice —
    the static footprint is exact: every object a run of the program
    touches is a leaf of its tree (the property test in
    [test_shard.ml] pins this over every grammar, nested-abort shapes
    included). *)

open Nt_base
open Nt_serial

val objects : Program.t -> Obj_id.t list
(** Distinct objects of the program's leaves, in first-access order. *)

type classification =
  | Local of int  (** Every access lands on this one shard. *)
  | Cross of int list
      (** Touches several shards (sorted, distinct, length >= 2) — or,
          conservatively, a program with no accesses at all routes as
          [Local 0]. *)

val classify : Partition.t -> Program.t -> classification
