(** Static partitioning of the object space across shards.

    Placement is a pure function of the object's {e group key}, so every
    participant (router, shard engines, the deterministic harness, the
    live service) computes the same shard for the same object with no
    shared state.  The default key strips a trailing ["#i"] replica
    suffix ({!Nt_replication.Replication} names physical replicas
    ["x#0"], ["x#1"], …), so all replicas of one logical object — and
    therefore every quorum subtree — land on one shard. *)

open Nt_base
open Nt_spec

type t

val default_key : Obj_id.t -> string
(** The object's name up to (excluding) the last ['#'], or the whole
    name when there is none. *)

val create :
  ?key:(Obj_id.t -> string) ->
  shards:int ->
  (Obj_id.t * Datatype.t) list ->
  t
(** Partition the declared object table into [shards] classes by
    hashing [key] (default {!default_key}).  Raises [Invalid_argument]
    when [shards < 1]. *)

val shards : t -> int

val shard_of : t -> Obj_id.t -> int
(** Placement of any object (declared or not — the hash is total), in
    [0 .. shards-1]. *)

val objects_of : t -> int -> (Obj_id.t * Datatype.t) list
(** The declared objects of one shard, in declaration order. *)

val objects : t -> (Obj_id.t * Datatype.t) list
(** The full declared table, in declaration order. *)
