open Nt_serial
open Nt_generic

type t = {
  part : Partition.t;
  spine : Spine.t;
  rt : Router.t;
  engines : Shard_engine.t array;
}

let create ?policy ?inform_policy ?abort_prob ?max_steps ?obs ?mode ?gating
    ?key ?max_program ~shards ~seed objects factory =
  let part = Partition.create ?key ~shards objects in
  let spine = Spine.create () in
  let rt = Router.create ?max_program part spine in
  let engines =
    Array.init shards (fun s ->
        Shard_engine.create ?policy ?inform_policy ?abort_prob ?max_steps ?obs
          ?mode ?gating ?max_program ~spine ~partition:part ~shard:s
          ~seed:(seed + (s * 1000003))
          factory)
  in
  Array.iter
    (fun e -> Shard_engine.set_on_report e (Router.note_report rt))
    engines;
  { part; spine; rt; engines }

let submit t prog =
  match Router.plan t.rt prog with
  | Error _ as e -> e
  | Ok { Router.p_g; p_dispatches; _ } ->
      List.iter
        (fun { Router.d_shard; d_prefix; d_prog } ->
          match
            Shard_engine.submit t.engines.(d_shard) ~prefix:d_prefix d_prog
          with
          | Ok _ -> ()
          | Error _ ->
              Router.note_dispatch_failed t.rt ~g:p_g
                ~piece:
                  (match d_prefix with [ _; k ] -> Some k | _ -> None))
        p_dispatches;
      Ok p_g

let kill t g =
  List.iter
    (fun (s, prefix) -> Shard_engine.kill_prefix t.engines.(s) prefix)
    (Router.kill_prefixes t.rt g)

let step_shard t s = Shard_engine.step t.engines.(s)

let quiescent t =
  Array.for_all
    (fun e -> Nt_net.Engine.live_top (Shard_engine.engine e) = 0)
    t.engines

let drain t = Array.iter (fun e -> ignore (Shard_engine.drain e)) t.engines

let truncated t =
  Array.exists (fun e -> Nt_net.Engine.truncated (Shard_engine.engine e)) t.engines

let result t g = Router.result t.rt g

let finish t =
  let locals = Array.map Shard_engine.finish t.engines in
  let stats =
    Array.fold_left
      (fun acc (r : Runtime.result) ->
        let s = r.Runtime.stats in
        {
          Runtime.actions = acc.Runtime.actions + s.Runtime.actions;
          rounds = acc.Runtime.rounds + s.Runtime.rounds;
          blocked_attempts = acc.Runtime.blocked_attempts + s.Runtime.blocked_attempts;
          deadlock_aborts = acc.Runtime.deadlock_aborts + s.Runtime.deadlock_aborts;
          deadlock_cycles = acc.Runtime.deadlock_cycles + s.Runtime.deadlock_cycles;
          injected_aborts = acc.Runtime.injected_aborts + s.Runtime.injected_aborts;
          truncated = acc.Runtime.truncated || s.Runtime.truncated;
        })
      {
        Runtime.actions = 0;
        rounds = 0;
        blocked_attempts = 0;
        deadlock_aborts = 0;
        deadlock_cycles = 0;
        injected_aborts = 0;
        truncated = false;
      }
      locals
  in
  let committed_top, aborted_top = Router.counts t.rt in
  let trace =
    Router.merged_trace t.rt
      (Array.to_list (Array.map Shard_engine.buffer t.engines))
  in
  let forest = Router.merged_forest t.rt in
  let schema =
    Program.schema_of ~objects:(Partition.objects t.part) forest
  in
  ({ Runtime.trace; stats; committed_top; aborted_top }, forest, schema)

let shards t = Array.length t.engines
let engine t s = t.engines.(s)
let spine t = t.spine
let partition t = t.part
let router t = t.rt

let vetoed t =
  Array.fold_left
    (fun acc e -> acc + Nt_net.Engine.vetoed (Shard_engine.engine e))
    0 t.engines
