(** One shard: an {!Nt_net.Engine} over the shard's slice of the object
    table, wired into the cross-shard {!Spine}.

    The wrapper does three things the plain engine cannot:

    - {e merged naming} — every submitted local top carries a merged
      path prefix ([[g]] for a whole program, [[g; k]] for piece [k] of
      cross-shard program [g]); the action tap remaps each local action
      into the merged name space and stamps it with the global sequence
      counter, so the union of all shard buffers sorts into one merged
      trace;
    - {e rail stamping} — top-level [Request_create]/report actions
      stamp {!Spine.note_submit}/{!Spine.note_complete} with the same
      sequence numbers, making the spine's implicit precedes rail
      exactly the merged trace's;
    - {e the second gate} — a top-level commit whose prospective edge
      set ({!Nt_sg.Monitor.prospective_commit_edges}) contains
      top-level edges presents their merged projection to
      {!Spine.gate} after the local controller admits; a spine veto is
      recorded through {!Nt_net.Admission.record_veto}, so clients see
      it exactly like a local veto.  Commits with no top-level
      prospective edges skip the spine — that fast path is exact, not
      heuristic: only edges incident to the committing top can close a
      new global cycle, and they are all in the prospective set.

    Thread discipline: every mutating entry point ({!submit}, {!step},
    {!drain}, {!kill}, {!finish}) must be called from the one thread
    that owns the shard (the domain worker, or the harness thread);
    {!published} and {!set_on_report} are safe from anywhere. *)

open Nt_base
open Nt_serial
open Nt_generic
open Nt_obs
open Nt_net

type t

type outcome =
  | Done_committed of Value.t
  | Done_aborted of Admission.veto option

type stats = {
  sh_submitted : int;
  sh_committed : int;
  sh_aborted : int;
  sh_vetoed : int;
  sh_live : int;
  sh_actions : int;
  sh_steps : int;
  sh_orphans : int;
  sh_doomed : int;
  sh_alarms : int;
  sh_cycle_alarms : int;
  sh_sg_nodes : int;
  sh_sg_edges : int;
  sh_sg_reorders : int;
}

val create :
  ?policy:Runtime.policy ->
  ?inform_policy:Runtime.inform_policy ->
  ?abort_prob:float ->
  ?max_steps:int ->
  ?obs:Obs.t ->
  ?mode:Nt_sg.Sg.conflict_mode ->
  ?gating:bool ->
  ?max_program:int ->
  spine:Spine.t ->
  partition:Partition.t ->
  shard:int ->
  seed:int ->
  Nt_gobj.Gobj.factory ->
  t
(** [gating] (default [true]) turns off {e both} the local admission
    gate and the spine consult — the sharded no-control, for negative
    tests. *)

val set_on_report :
  t -> (g:int -> piece:int option -> seq:int -> outcome -> unit) -> unit
(** Fired from the action tap at every local top-level report, with the
    merged identity and the report's trace stamp.  Runs on the shard's
    thread; keep it cheap and lock-disciplined. *)

val submit : t -> prefix:int list -> Program.t -> (Txn_id.t, string) result
(** Validate and attach, recording the merged prefix for the new local
    top. *)

val kill_prefix : t -> int list -> unit
(** Kill the local top registered under this merged prefix (no-op for
    unknown prefixes). *)

val step : t -> [ `Progress | `Quiescent | `Truncated ]
val drain : ?burst:int -> t -> [ `Progress | `Quiescent | `Truncated ]

val finish : t -> Runtime.result
(** The local result (local names); the merged trace comes from
    {!buffer}. *)

val buffer : t -> (int * Nt_base.Action.t) list
(** Merged-named, stamp-carrying actions, newest first. *)

val shard : t -> int
val engine : t -> Engine.t

val publish : t -> unit
(** Snapshot the engine counters into a cell readable from other
    threads. *)

val published : t -> stats
(** The last published snapshot (all zeros before the first
    {!publish}). *)

val snapshot : t -> stats
(** Compute the counters directly — only from the owning thread. *)
