(* A mutex+condvar MPSC mailbox: many producers (the serving thread),
   one consumer (the shard's worker).  [pop ~block:true] parks the
   worker until a message arrives; non-blocking pops let the worker
   interleave mailbox drains with engine steps while it has work. *)

type 'a t = { mu : Mutex.t; cv : Condition.t; q : 'a Queue.t }

let create () = { mu = Mutex.create (); cv = Condition.create (); q = Queue.create () }

let push t x =
  Mutex.lock t.mu;
  Queue.add x t.q;
  Condition.signal t.cv;
  Mutex.unlock t.mu

let pop ~block t =
  Mutex.lock t.mu;
  if block then
    while Queue.is_empty t.q do
      Condition.wait t.cv t.mu
    done;
  let msgs = ref [] in
  while not (Queue.is_empty t.q) do
    msgs := Queue.pop t.q :: !msgs
  done;
  Mutex.unlock t.mu;
  List.rev !msgs
