let sum = List.fold_left ( +. ) 0.0
let mean = function [] -> 0.0 | xs -> sum xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)

let median xs = percentile 50.0 xs
let minimum = function [] -> 0.0 | xs -> List.fold_left Float.min infinity xs
let maximum = function [] -> 0.0 | xs -> List.fold_left Float.max neg_infinity xs
let ratio a b = if b = 0.0 then 0.0 else a /. b
