(** Small numeric summaries for the experiment harness. *)

val mean : float list -> float
(** 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100], nearest-rank on the sorted
    list; 0 on the empty list. *)

val median : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val sum : float list -> float
val ratio : float -> float -> float
(** [ratio a b = a /. b], 0 when [b = 0]. *)
