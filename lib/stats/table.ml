type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* newest first *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- row :: t.rows

let cell_f f = Printf.sprintf "%.2f" f
let cell_i = string_of_int

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length t.columns)
      rows
  in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line row = String.concat "  " (List.map2 pad widths row) in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (("== " ^ t.title ^ " ==") :: line t.columns :: sep :: List.map line rows)

let print t = print_string (render t ^ "\n")

let to_json t =
  let open Nt_obs in
  Json.Obj
    [
      ("title", Json.Str t.title);
      ("columns", Json.Arr (List.map (fun c -> Json.Str c) t.columns));
      ( "rows",
        Json.Arr
          (List.rev_map
             (fun row -> Json.Arr (List.map (fun c -> Json.Str c) row))
             t.rows) );
    ]
