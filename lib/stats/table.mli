(** Fixed-width text tables for benchmark output. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the
    header. *)

val cell_f : float -> string
(** Format a float with 2 decimals. *)

val cell_i : int -> string

val render : t -> string
(** The table as a string, column widths fitted to contents. *)

val print : t -> unit
(** [render] to stdout with a trailing newline. *)

val to_json : t -> Nt_obs.Json.t
(** [{"title":...,"columns":[...],"rows":[[cell,...],...]}] — the
    machine-readable form behind [bench --json]. *)
