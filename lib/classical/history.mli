(** Flat histories — the classical theory's objects of study.

    The paper contrasts its construction with the classical
    serializability theory (Bernstein–Hadzilacos–Goodman): flat
    transactions, read/write steps, commit/abort markers, and
    correctness judged by the conflict graph of the committed
    projection.  This module implements that baseline so the
    experiments can cross-check the nested construction against it on
    depth-one workloads (classical transactions are exactly the
    children of [T0]). *)

open Nt_base

type kind = Read | Write

type event =
  | Op of int * Obj_id.t * kind  (** A step of flat transaction [i]. *)
  | Commit of int
  | Abort of int

type t = event list

val committed_projection : t -> t
(** Steps of committed transactions only (the classical "C(H)"). *)

val transactions : t -> int list
(** All transaction ids appearing, ascending. *)

val of_trace : Nt_spec.Schema.t -> Trace.t -> t
(** Extract the flat history of a nested trace whose nesting is
    depth-two (children of [T0] with access leaves): one [Op] per
    access response, attributed to the top-level ancestor, and one
    marker per top-level completion.  Accesses must be register
    operations. *)

val pp : Format.formatter -> t -> unit
