(** Classical view serializability — the weaker classical criterion.

    The paper notes the classical conflict-graph test is necessary and
    sufficient only for the {e conflict}-based notion; classical view
    serializability accepts more histories (blind writes) but is
    NP-complete to decide.  This module decides it by exhaustive
    permutation search (guarded to small transaction counts) so the
    test suite and E4 can place the nested construction precisely
    between the two classical notions on flat workloads:
    conflict-serializable ⊆ view-serializable, with a strict gap.

    Two histories over the same committed transactions are {e view
    equivalent} when every read reads-from the same writer (or the
    initial state) in both, and the final write of every object
    agrees.  A history is view serializable iff it is view equivalent
    to some serial order of its committed transactions. *)

exception Too_large of int
(** Raised when the committed transaction count exceeds the search
    bound (9). *)

val reads_from : History.t -> (int * Nt_base.Obj_id.t * int option) list
(** For each read step of the committed projection (identified by its
    position), the transaction it reads from ([None] = initial
    state).  Positions index the committed projection's [Op] steps. *)

val view_equivalent : History.t -> int list -> bool
(** [view_equivalent h order]: is [h] view equivalent to the serial
    history running the committed transactions of [h] in [order]
    (each transaction's steps in their [h] order)? *)

val is_view_serializable : History.t -> bool
(** Permutation search over committed transactions. *)
