(** The classical serialization (conflict) graph.

    Nodes are the committed flat transactions; there is an edge
    [i -> j] ([i ≠ j]) when some step of [i] precedes a conflicting
    step of [j] (same object, at least one a write) in the committed
    projection.  A history is conflict serializable iff the graph is
    acyclic — the classical necessary-{e and}-sufficient test the
    paper's construction generalizes. *)

val edges : History.t -> (int * int) list
(** Conflict edges over the committed projection, deduplicated. *)

val is_serializable : History.t -> bool

val serialization_order : History.t -> int list option
(** A topological order of the committed transactions, or [None] if
    the graph is cyclic. *)
