open Nt_base

type kind = Read | Write
type event = Op of int * Obj_id.t * kind | Commit of int | Abort of int
type t = event list

let committed_projection h =
  let committed =
    List.filter_map (function Commit i -> Some i | _ -> None) h
  in
  List.filter
    (function
      | Op (i, _, _) -> List.mem i committed
      | Commit _ -> true
      | Abort _ -> false)
    h

let transactions h =
  List.filter_map
    (function Op (i, _, _) -> Some i | Commit i | Abort i -> Some i)
    h
  |> List.sort_uniq Stdlib.compare

let top_index t =
  (* The index of the top-level ancestor (child of T0). *)
  match List.rev (Txn_id.path t) with
  | [] -> invalid_arg "History.of_trace: action at T0"
  | _ -> List.hd (Txn_id.path t)

let of_trace (schema : Nt_spec.Schema.t) trace =
  List.filter_map
    (fun a ->
      match a with
      | Action.Request_commit (t, _)
        when Nt_base.System_type.is_access schema.Nt_spec.Schema.sys t ->
          let kind =
            match schema.Nt_spec.Schema.op_of t with
            | Nt_spec.Datatype.Read -> Read
            | Nt_spec.Datatype.Write _ -> Write
            | op -> raise (Nt_spec.Datatype.Unsupported op)
          in
          let x = System_type.object_of_exn schema.Nt_spec.Schema.sys t in
          Some (Op (top_index t, x, kind))
      | Action.Commit t when Txn_id.depth t = 1 ->
          Some (Commit (top_index t))
      | Action.Abort t when Txn_id.depth t = 1 -> Some (Abort (top_index t))
      | _ -> None)
    (Trace.to_list trace)

let pp fmt h =
  let pp_event fmt = function
    | Op (i, x, Read) -> Format.fprintf fmt "r%d[%a]" i Obj_id.pp x
    | Op (i, x, Write) -> Format.fprintf fmt "w%d[%a]" i Obj_id.pp x
    | Commit i -> Format.fprintf fmt "c%d" i
    | Abort i -> Format.fprintf fmt "a%d" i
  in
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " ")
    pp_event fmt h
