let conflicting (k1 : History.kind) (k2 : History.kind) =
  k1 = History.Write || k2 = History.Write

let edges h =
  let steps =
    List.filter_map
      (function History.Op (i, x, k) -> Some (i, x, k) | _ -> None)
      (History.committed_projection h)
  in
  let tbl = Hashtbl.create 32 in
  let rec scan = function
    | [] -> ()
    | (i, x, k) :: rest ->
        List.iter
          (fun (j, y, k') ->
            if i <> j && Nt_base.Obj_id.equal x y && conflicting k k' then
              Hashtbl.replace tbl (i, j) ())
          rest;
        scan rest
  in
  scan steps;
  Hashtbl.fold (fun e () acc -> e :: acc) tbl []

let nodes h =
  List.filter_map
    (function History.Commit i -> Some i | _ -> None)
    h
  |> List.sort_uniq Stdlib.compare

let serialization_order h =
  let ns = nodes h and es = edges h in
  let indegree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indegree n 0) ns;
  List.iter
    (fun (_, j) -> Hashtbl.replace indegree j (Hashtbl.find indegree j + 1))
    es;
  let module IS = Set.Make (Int) in
  let frontier =
    ref
      (List.fold_left
         (fun acc n -> if Hashtbl.find indegree n = 0 then IS.add n acc else acc)
         IS.empty ns)
  in
  let out = ref [] in
  while not (IS.is_empty !frontier) do
    let n = IS.min_elt !frontier in
    frontier := IS.remove n !frontier;
    out := n :: !out;
    List.iter
      (fun (i, j) ->
        if i = n then begin
          let d = Hashtbl.find indegree j - 1 in
          Hashtbl.replace indegree j d;
          if d = 0 then frontier := IS.add j !frontier
        end)
      es
  done;
  if List.length !out = List.length ns then Some (List.rev !out) else None

let is_serializable h = serialization_order h <> None
