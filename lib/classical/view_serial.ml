open Nt_base

exception Too_large of int

let steps h =
  List.filter_map
    (function History.Op (i, x, k) -> Some (i, x, k) | _ -> None)
    (History.committed_projection h)

(* The reads-from function of a step list: position |-> source. *)
let reads_from_steps ops =
  List.mapi
    (fun pos (i, x, k) ->
      match k with
      | History.Write -> None
      | History.Read ->
          let source =
            List.fold_left
              (fun acc (pos', (j, y, k')) ->
                if
                  pos' < pos && k' = History.Write && Obj_id.equal x y
                then Some j
                else acc)
              None
              (List.mapi (fun p s -> (p, s)) ops)
          in
          ignore i;
          Some (pos, x, source))
    ops
  |> List.filter_map Fun.id

let final_writes ops =
  List.fold_left
    (fun acc (i, x, k) ->
      if k = History.Write then
        (x, i) :: List.filter (fun (y, _) -> not (Obj_id.equal x y)) acc
      else acc)
    [] ops

let reads_from h = reads_from_steps (steps h)

(* The per-transaction step sequences, and the serial rearrangement. *)
let serialize h order =
  let ops = steps h in
  List.concat_map
    (fun txn -> List.filter (fun (i, _, _) -> i = txn) ops)
    order

(* View equivalence compares reads-from SOURCES per read occurrence of
   each transaction (the k-th read of object x by transaction i), not
   global positions, since positions move under reordering. *)
let read_keys ops =
  (* Assign each read step a stable key (txn, object, occurrence #). *)
  let counts = Hashtbl.create 16 in
  List.filter_map
    (fun ((i, x, k), source) ->
      match k with
      | History.Write -> None
      | History.Read ->
          let key = (i, x) in
          let c =
            match Hashtbl.find_opt counts key with Some c -> c | None -> 0
          in
          Hashtbl.replace counts key (c + 1);
          Some ((i, x, c), source))
    ops

let annotated_reads ops =
  let rf = reads_from_steps ops in
  let sources =
    List.map
      (fun (pos, _, source) -> (pos, source))
      rf
  in
  let with_sources =
    List.mapi
      (fun pos step -> (step, List.assoc_opt pos sources |> Option.join))
      ops
  in
  read_keys with_sources

let view_equivalent h order =
  let ops_h = steps h in
  let ops_s = serialize h order in
  let reads_h = annotated_reads ops_h in
  let reads_s = annotated_reads ops_s in
  let sorted l = List.sort compare l in
  sorted reads_h = sorted reads_s
  && sorted (final_writes ops_h) = sorted (final_writes ops_s)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let is_view_serializable h =
  let committed =
    List.filter_map (function History.Commit i -> Some i | _ -> None) h
    |> List.sort_uniq compare
  in
  if List.length committed > 9 then raise (Too_large (List.length committed));
  List.exists (view_equivalent h) (permutations committed)
