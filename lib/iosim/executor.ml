open Nt_base
open Nt_obs

let run_with ~choose ?(max_steps = 100_000) ?(obs = Obs.null) ~seed automaton =
  let rng = Rng.create seed in
  let rec go auto acc steps =
    if steps >= max_steps then (Trace.of_list (List.rev acc), auto)
    else
      match Automaton.enabled auto with
      | [] -> (Trace.of_list (List.rev acc), auto)
      | actions -> (
          match choose rng actions with
          | None -> (Trace.of_list (List.rev acc), auto)
          | Some a ->
              if Obs.enabled obs then Obs.on_action obs a;
              go (Automaton.fire auto a) (a :: acc) (steps + 1))
  in
  go automaton [] 0

let run ?max_steps ?obs ~seed automaton =
  run_with
    ~choose:(fun rng actions -> Some (Rng.pick_list rng actions))
    ?max_steps ?obs ~seed automaton
