open Nt_base

let run_with ~choose ?(max_steps = 100_000) ~seed automaton =
  let rng = Rng.create seed in
  let rec go auto acc steps =
    if steps >= max_steps then (Trace.of_list (List.rev acc), auto)
    else
      match Automaton.enabled auto with
      | [] -> (Trace.of_list (List.rev acc), auto)
      | actions -> (
          match choose rng actions with
          | None -> (Trace.of_list (List.rev acc), auto)
          | Some a -> go (Automaton.fire auto a) (a :: acc) (steps + 1))
  in
  go automaton [] 0

let run ?max_steps ~seed automaton =
  run_with
    ~choose:(fun rng actions -> Some (Rng.pick_list rng actions))
    ?max_steps ~seed automaton
