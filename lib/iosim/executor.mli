(** Driving compositions of I/O automata.

    Repeatedly pick one enabled locally-controlled action — seeded
    uniformly at random — and fire it, recording the trace.  This is
    the paper's execution model (an arbitrary fair interleaving of
    locally-controlled steps) made executable and reproducible. *)

open Nt_base
open Nt_obs

val run :
  ?max_steps:int ->
  ?obs:Obs.t ->
  seed:int ->
  Automaton.t ->
  Trace.t * Automaton.t
(** Run to quiescence (no enabled actions) or [max_steps] (default
    100_000), returning the trace and the final composition.  [obs]
    (default {!Obs.null}) receives every fired action. *)

val run_with :
  choose:(Rng.t -> Action.t list -> Action.t option) ->
  ?max_steps:int ->
  ?obs:Obs.t ->
  seed:int ->
  Automaton.t ->
  Trace.t * Automaton.t
(** Like {!run} with a custom scheduling policy: [choose rng enabled]
    returns the next action, or [None] to stop early. *)
