open Nt_base

type 'state component = {
  name : string;
  state : 'state;
  signature : Action.t -> [ `Input | `Output | `Not_mine ];
  step : 'state -> Action.t -> 'state;
  enabled : 'state -> Action.t list;
}

(* Existentially packed component. *)
type packed =
  | Packed : 'state component -> packed

type t = packed list

let component c = [ Packed c ]
let compose ts = List.concat ts

let enabled t =
  List.concat_map (fun (Packed c) -> c.enabled c.state) t

let fire t action =
  let owners =
    List.filter
      (fun (Packed c) -> c.signature action = `Output)
      t
  in
  (match owners with
  | [] ->
      invalid_arg
        ("Automaton.fire: no component outputs " ^ Action.to_string action)
  | [ _ ] -> ()
  | Packed a :: Packed b :: _ ->
      invalid_arg
        (Printf.sprintf "Automaton.fire: %s claimed as output by %s and %s"
           (Action.to_string action) a.name b.name));
  List.map
    (fun (Packed c) ->
      match c.signature action with
      | `Not_mine -> Packed c
      | `Input | `Output -> Packed { c with state = c.step c.state action })
    t
