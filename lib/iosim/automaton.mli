(** Executable I/O automata (Section 2.1).

    The paper's components — transactions, objects, schedulers — are
    I/O automata: states, input/output/internal actions, and a step
    relation, composed so that an action is performed simultaneously by
    every component sharing it.  This module gives the executable
    counterpart over the {!Nt_base.Action} vocabulary:

    - a component is a state plus a [step] function (inputs must always
      be accepted: input-enabledness is the caller's obligation and is
      asserted by the executor) and an [enabled] enumeration of the
      locally-controlled actions it can currently perform;
    - {!compose} implements the paper's composition: the composite's
      enabled outputs are those of each component, and firing an action
      steps every component that has it in its signature.

    The executor ({!Executor}) drives a composition by repeatedly
    choosing one enabled locally-controlled action (seeded-randomly),
    which realizes the paper's arbitrary interleaving semantics and
    produces behaviors for the trace machinery and the
    serialization-graph checker. *)

open Nt_base

type 'state component = {
  name : string;  (** For error reporting. *)
  state : 'state;
  signature : Action.t -> [ `Input | `Output | `Not_mine ];
      (** Static action signature; internal actions are not modelled
          (none of the paper's component interactions need them). *)
  step : 'state -> Action.t -> 'state;
      (** Apply an action in the signature.  For inputs this must be
          total (input-enabledness). *)
  enabled : 'state -> Action.t list;
      (** The currently enabled locally-controlled (output) actions. *)
}

type t
(** A composition of components (existentially packed). *)

val component : 'state component -> t
(** Pack one component. *)

val compose : t list -> t
(** Compose; output signatures must be disjoint (checked lazily: firing
    an action claimed as output by two components raises
    [Invalid_argument]). *)

val enabled : t -> Action.t list
(** All enabled outputs of the composition, in component order. *)

val fire : t -> Action.t -> t
(** Perform one action: every component with the action in its
    signature steps; raises [Invalid_argument] if no component claims
    it as an output. *)
