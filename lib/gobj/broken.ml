open Nt_base
open Nt_spec

(* Shared bookkeeping: respond to each created access exactly once, so
   even broken protocols keep traces generically well-formed (the point
   is to violate the theorems' hypotheses, not trace syntax). *)
type book = {
  mutable created : Txn_id.Set.t;
  mutable responded : Txn_id.Set.t;
}

let fresh_book () = { created = Txn_id.Set.empty; responded = Txn_id.Set.empty }

let can_respond book t =
  Txn_id.Set.mem t book.created && not (Txn_id.Set.mem t book.responded)

let no_control : Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let state = ref dt.Datatype.init in
  let book = fresh_book () in
  {
    Gobj.obj = x;
    create = (fun t -> book.created <- Txn_id.Set.add t book.created);
    inform_commit = (fun _ -> ());
    inform_abort = (fun _ -> ());
    try_respond =
      (fun t ->
        if not (can_respond book t) then None
        else begin
          book.responded <- Txn_id.Set.add t book.responded;
          let s', v = dt.Datatype.apply !state (schema.Schema.op_of t) in
          state := s';
          Some v
        end);
    waiting_on = (fun _ -> []);
  }

(* Moss' write-lock stack, but reads neither take locks nor wait for
   writers: a read returns the deepest write-lockholder's value even
   when that writer is no ancestor — a dirty read. *)
let unsafe_read : Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let book = fresh_book () in
  let write_locks = ref (Txn_id.Map.singleton Txn_id.root dt.Datatype.init) in
  let least_holder () =
    (* Holders form a chain; the least is the deepest. *)
    Txn_id.Map.fold
      (fun t v acc ->
        match acc with
        | Some (t', _) when Txn_id.depth t' >= Txn_id.depth t -> acc
        | _ -> Some (t, v))
      !write_locks None
  in
  {
    Gobj.obj = x;
    create = (fun t -> book.created <- Txn_id.Set.add t book.created);
    inform_commit =
      (fun t ->
        match Txn_id.Map.find_opt t !write_locks with
        | None -> ()
        | Some v ->
            let p = Txn_id.parent_exn t in
            write_locks := Txn_id.Map.add p v (Txn_id.Map.remove t !write_locks));
    inform_abort =
      (fun t ->
        write_locks :=
          Txn_id.Map.filter
            (fun u _ -> not (Txn_id.is_descendant u t))
            !write_locks);
    try_respond =
      (fun t ->
        if not (can_respond book t) then None
        else
          match schema.Schema.op_of t with
          | Datatype.Read -> (
              match least_holder () with
              | Some (_, v) ->
                  book.responded <- Txn_id.Set.add t book.responded;
                  Some v
              | None ->
                  book.responded <- Txn_id.Set.add t book.responded;
                  Some dt.Datatype.init)
          | Datatype.Write v ->
              if Txn_id.Map.for_all (fun u _ -> Txn_id.is_ancestor u t) !write_locks
              then begin
                book.responded <- Txn_id.Set.add t book.responded;
                write_locks := Txn_id.Map.add t v !write_locks;
                Some Value.Ok
              end
              else None
          | op -> raise (Datatype.Unsupported op));
    waiting_on =
      (fun t ->
        Txn_id.Map.fold
          (fun u _ acc ->
            if Txn_id.is_ancestor u t then acc else (u, Gobj.Write) :: acc)
          !write_locks []);
  }

(* An operation log that is never purged of aborted descendants and
   never consults commutativity. *)
let no_undo : Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let book = fresh_book () in
  let log = ref [] (* newest first *) in
  {
    Gobj.obj = x;
    create = (fun t -> book.created <- Txn_id.Set.add t book.created);
    inform_commit = (fun _ -> ());
    inform_abort = (fun _ -> ());
    try_respond =
      (fun t ->
        if not (can_respond book t) then None
        else begin
          book.responded <- Txn_id.Set.add t book.responded;
          let state =
            List.fold_left
              (fun s op -> fst (dt.Datatype.apply s op))
              dt.Datatype.init
              (List.rev !log)
          in
          let op = schema.Schema.op_of t in
          let _, v = dt.Datatype.apply state op in
          log := op :: !log;
          Some v
        end);
    waiting_on = (fun _ -> []);
  }
