open Nt_base
open Nt_spec

(* Shared bookkeeping: respond to each created access exactly once, so
   even broken protocols keep traces generically well-formed (the point
   is to violate the theorems' hypotheses, not trace syntax). *)
type book = {
  mutable created : Txn_id.Set.t;
  mutable responded : Txn_id.Set.t;
}

let fresh_book () = { created = Txn_id.Set.empty; responded = Txn_id.Set.empty }

let can_respond book t =
  Txn_id.Set.mem t book.created && not (Txn_id.Set.mem t book.responded)

let no_control : Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let state = ref dt.Datatype.init in
  let book = fresh_book () in
  {
    Gobj.obj = x;
    create = (fun t -> book.created <- Txn_id.Set.add t book.created);
    inform_commit = (fun _ -> ());
    inform_abort = (fun _ -> ());
    try_respond =
      (fun t ->
        if not (can_respond book t) then None
        else begin
          book.responded <- Txn_id.Set.add t book.responded;
          let s', v = dt.Datatype.apply !state (schema.Schema.op_of t) in
          state := s';
          Some v
        end);
    waiting_on = (fun _ -> []);
  }

(* Moss' write-lock stack, but reads neither take locks nor wait for
   writers: a read returns the deepest write-lockholder's value even
   when that writer is no ancestor — a dirty read. *)
let unsafe_read : Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let book = fresh_book () in
  let write_locks = ref (Txn_id.Map.singleton Txn_id.root dt.Datatype.init) in
  let least_holder () =
    (* Holders form a chain; the least is the deepest. *)
    Txn_id.Map.fold
      (fun t v acc ->
        match acc with
        | Some (t', _) when Txn_id.depth t' >= Txn_id.depth t -> acc
        | _ -> Some (t, v))
      !write_locks None
  in
  {
    Gobj.obj = x;
    create = (fun t -> book.created <- Txn_id.Set.add t book.created);
    inform_commit =
      (fun t ->
        match Txn_id.Map.find_opt t !write_locks with
        | None -> ()
        | Some v ->
            let p = Txn_id.parent_exn t in
            write_locks := Txn_id.Map.add p v (Txn_id.Map.remove t !write_locks));
    inform_abort =
      (fun t ->
        write_locks :=
          Txn_id.Map.filter
            (fun u _ -> not (Txn_id.is_descendant u t))
            !write_locks);
    try_respond =
      (fun t ->
        if not (can_respond book t) then None
        else
          match schema.Schema.op_of t with
          | Datatype.Read -> (
              match least_holder () with
              | Some (_, v) ->
                  book.responded <- Txn_id.Set.add t book.responded;
                  Some v
              | None ->
                  book.responded <- Txn_id.Set.add t book.responded;
                  Some dt.Datatype.init)
          | Datatype.Write v ->
              if Txn_id.Map.for_all (fun u _ -> Txn_id.is_ancestor u t) !write_locks
              then begin
                book.responded <- Txn_id.Set.add t book.responded;
                write_locks := Txn_id.Map.add t v !write_locks;
                Some Value.Ok
              end
              else None
          | op -> raise (Datatype.Unsupported op));
    waiting_on =
      (fun t ->
        Txn_id.Map.fold
          (fun u _ acc ->
            if Txn_id.is_ancestor u t then acc else (u, Gobj.Write) :: acc)
          !write_locks []);
  }

(* ----- weak-isolation session stores -----

   The three factories below are *weak-consistency* adversaries rather
   than crude protocol deletions: within one top-level transaction
   family (a "session") they behave like Moss' write-lock stack —
   pending writes are inherited on commit, discarded on abort, and
   read-your-writes holds along the ancestor chain — but reads that
   fall through to committed state see a backend-specific *stale*
   view of the global committed-write log instead of its latest entry.
   Writes never validate against concurrent sessions, so two sessions
   can both read the same stale state and blind-write disjoint objects
   (write skew) or the same object (lost update).

   The disciplines differ only in when a session's view of an object
   advances along the committed log:
   - snapshot-read: never (frozen at the session's first access);
   - causal-only:   after every access (reads lag by one access);
   - prefix-consistent: only when the session writes the object. *)

(* The child of T0 on the access's path — the session identity. *)
let rec top_of t =
  match Txn_id.parent t with
  | None -> t
  | Some p -> if Txn_id.is_root p then t else top_of p

(* The run-global store, shared across every object of one run: a
   version clock that bumps once per top-level committed write, the
   per-object committed version lists (newest first), the per-object
   Moss-style pending holder chains, and the per-session cursors —
   cuts of the clock.  Sharing the clock across objects is what makes
   the staleness cross-object: a frozen cursor misses commits to
   {e every} object, not just re-reads of one. *)
type shared_store = {
  mutable clock : int;
  versions : (int * Value.t) list Obj_id.Tbl.t;  (* newest first *)
  pending : Value.t Txn_id.Map.t Obj_id.Tbl.t;
  mutable sessions : int Txn_id.Map.t;  (* per top-level family *)
}

let fresh_shared () =
  {
    clock = 0;
    versions = Obj_id.Tbl.create 8;
    pending = Obj_id.Tbl.create 8;
    sessions = Txn_id.Map.empty;
  }

let pending_of sh x =
  Option.value ~default:Txn_id.Map.empty (Obj_id.Tbl.find_opt sh.pending x)

(* The newest committed version of [x] at cut [c] of the clock. *)
let value_at sh init x c =
  let rec newest = function
    | [] -> init
    | (seq, v) :: older -> if seq <= c then v else newest older
  in
  newest (Option.value ~default:[] (Obj_id.Tbl.find_opt sh.versions x))

(* The deepest pending writer of [x] on [t]'s ancestor chain: the
   value the session has already written and must see again
   (read-your-writes, with correct nested undo). *)
let own_write sh x t =
  Txn_id.Map.fold
    (fun u v acc ->
      if not (Txn_id.is_ancestor u t) then acc
      else
        match acc with
        | Some (u', _) when Txn_id.depth u' >= Txn_id.depth u -> acc
        | _ -> Some (u, v))
    (pending_of sh x) None

(* Commit/abort plumbing shared by the weak stores: a committed
   holder's value moves to its parent; a write reaching T0 bumps the
   clock and installs a new version; an abort discards every
   descendant holder. *)
let store_inform_commit sh x t =
  let p = pending_of sh x in
  match Txn_id.Map.find_opt t p with
  | None -> ()
  | Some v ->
      let p = Txn_id.Map.remove t p in
      let parent = Txn_id.parent_exn t in
      if Txn_id.is_root parent then begin
        sh.clock <- sh.clock + 1;
        Obj_id.Tbl.replace sh.versions x
          ((sh.clock, v)
          :: Option.value ~default:[] (Obj_id.Tbl.find_opt sh.versions x));
        Obj_id.Tbl.replace sh.pending x p
      end
      else Obj_id.Tbl.replace sh.pending x (Txn_id.Map.add parent v p)

let store_inform_abort sh x t =
  Obj_id.Tbl.replace sh.pending x
    (Txn_id.Map.filter
       (fun u _ -> not (Txn_id.is_descendant u t))
       (pending_of sh x))

(* One weak factory, parameterized by the staleness discipline: a
   session's cursor starts at the clock of its first access, and
   [after_access]/[after_write] say how it advances.  The shared store
   is one allocation per run: [Runtime.make] applies the factory to
   all of a run's objects in one burst with a single fresh schema
   record, so the store is keyed on the schema's physical identity. *)
let weak_session ~after_access ~after_write : Gobj.factory =
  let memo = ref None in
  fun schema x ->
    let sh =
      match !memo with
      | Some (sch, sh) when sch == schema -> sh
      | _ ->
          let sh = fresh_shared () in
          memo := Some (schema, sh);
          sh
    in
    let dt = schema.Schema.dtype_of x in
    let book = fresh_book () in
    let session_of t =
      let s = top_of t in
      match Txn_id.Map.find_opt s sh.sessions with
      | Some c -> (s, c)
      | None ->
          let c = sh.clock in
          sh.sessions <- Txn_id.Map.add s c sh.sessions;
          (s, c)
    in
    {
      Gobj.obj = x;
      create = (fun t -> book.created <- Txn_id.Set.add t book.created);
      inform_commit = (fun t -> store_inform_commit sh x t);
      inform_abort = (fun t -> store_inform_abort sh x t);
      try_respond =
        (fun t ->
          if not (can_respond book t) then None
          else begin
            book.responded <- Txn_id.Set.add t book.responded;
            let s, cursor = session_of t in
            let visible =
              match own_write sh x t with
              | Some (_, v) -> v
              | None -> value_at sh dt.Datatype.init x cursor
            in
            match schema.Schema.op_of t with
            | Datatype.Read ->
                sh.sessions <-
                  Txn_id.Map.add s (after_access sh cursor) sh.sessions;
                Some visible
            | Datatype.Write w as op ->
                let _, v = dt.Datatype.apply visible op in
                Obj_id.Tbl.replace sh.pending x
                  (Txn_id.Map.add t w (pending_of sh x));
                sh.sessions <-
                  Txn_id.Map.add s
                    (after_write sh (after_access sh cursor))
                    sh.sessions;
                Some v
            | op -> raise (Datatype.Unsupported op)
          end);
      waiting_on = (fun _ -> []);
    }

let snapshot_read : Gobj.factory =
  weak_session
    ~after_access:(fun _ cursor -> cursor)
    ~after_write:(fun _ cursor -> cursor)

let causal_only : Gobj.factory =
  weak_session
    ~after_access:(fun sh _ -> sh.clock)
    ~after_write:(fun _ cursor -> cursor)

let prefix_consistent : Gobj.factory =
  weak_session
    ~after_access:(fun _ cursor -> cursor)
    ~after_write:(fun sh _ -> sh.clock)

(* An operation log that is never purged of aborted descendants and
   never consults commutativity. *)
let no_undo : Gobj.factory =
 fun schema x ->
  let dt = schema.Schema.dtype_of x in
  let book = fresh_book () in
  let log = ref [] (* newest first *) in
  {
    Gobj.obj = x;
    create = (fun t -> book.created <- Txn_id.Set.add t book.created);
    inform_commit = (fun _ -> ());
    inform_abort = (fun _ -> ());
    try_respond =
      (fun t ->
        if not (can_respond book t) then None
        else begin
          book.responded <- Txn_id.Set.add t book.responded;
          let state =
            List.fold_left
              (fun s op -> fst (dt.Datatype.apply s op))
              dt.Datatype.init
              (List.rev !log)
          in
          let op = schema.Schema.op_of t in
          let _, v = dt.Datatype.apply state op in
          log := op :: !log;
          Some v
        end);
    waiting_on = (fun _ -> []);
  }
