(** Deliberately incorrect generic objects — negative controls.

    The serialization-graph checker would be worthless if it accepted
    everything; these protocols produce, under contention, behaviors
    that violate the theorems' hypotheses, and the tests and Experiment
    E7 confirm the checker rejects them.

    {ul
    {- {!no_control}: answers every access immediately from a single
       update-in-place state, with no locks and no recovery — aborted
       writers' effects leak to visible readers (violates
       appropriateness) and conflicting siblings interleave freely
       (cyclic serialization graphs);}
    {- {!unsafe_read}: Moss' algorithm for writes, but reads ignore
       write locks — reads are current-but-unsafe "dirty reads"
       (violates the [safe] condition of Lemma 6);}
    {- {!no_undo}: keeps an operation log but never undoes aborted
       descendants and never checks commutativity — the undo-logging
       algorithm with both preconditions stripped.}} *)

val no_control : Gobj.factory
val unsafe_read : Gobj.factory
val no_undo : Gobj.factory
