(** Deliberately incorrect generic objects — negative controls.

    The serialization-graph checker would be worthless if it accepted
    everything; these protocols produce, under contention, behaviors
    that violate the theorems' hypotheses, and the tests and Experiment
    E7 confirm the checker rejects them.

    {ul
    {- {!no_control}: answers every access immediately from a single
       update-in-place state, with no locks and no recovery — aborted
       writers' effects leak to visible readers (violates
       appropriateness) and conflicting siblings interleave freely
       (cyclic serialization graphs);}
    {- {!unsafe_read}: Moss' algorithm for writes, but reads ignore
       write locks — reads are current-but-unsafe "dirty reads"
       (violates the [safe] condition of Lemma 6);}
    {- {!no_undo}: keeps an operation log but never undoes aborted
       descendants and never checks commutativity — the undo-logging
       algorithm with both preconditions stripped.}}

    {2 Weak-isolation session stores}

    Three further adversaries that emit {e weak-consistency} anomalies
    rather than crude protocol violations.  Each treats a top-level
    transaction family as a {e session}: pending writes move up the
    ancestor chain exactly like Moss' write-lock stack (inherit on
    commit, discard on abort, read-your-writes along the chain), so
    nested recovery is correct — but reads that fall through to
    committed state observe a {e stale cut} of the run-global
    committed-write order (one shared version clock across all of the
    run's objects; each session holds a cursor into it), and writes
    never validate against concurrent sessions.  All three produce
    stale-but-consistent reads (a session's cut only ever advances, so
    its view is a genuine prefix of the commit order across every
    object) and are write-skew-capable: two sessions can read the same
    stale cut and blind-write past each other.  Register (read/write)
    schemas only.

    {ul
    {- {!snapshot_read}: the cut freezes at the session's first access
       to {e any} object — snapshot isolation with first-committer
       validation deleted (write skew, lost update);}
    {- {!causal_only}: the cut advances to the current clock {e after}
       every access, so each read sees the committed state as of the
       session's {e previous} access — causally plausible but missing
       concurrent commits (fractured reads across objects);}
    {- {!prefix_consistent}: the cut advances only when the session
       writes — read-only sessions observe an ever-staler prefix of
       the commit order.}} *)

val no_control : Gobj.factory
val unsafe_read : Gobj.factory
val no_undo : Gobj.factory
val causal_only : Gobj.factory
val prefix_consistent : Gobj.factory
val snapshot_read : Gobj.factory
