open Nt_base

type lock_kind = Read | Write | Update | Other of string

let lock_kind_string = function
  | Read -> "read"
  | Write -> "write"
  | Update -> "update"
  | Other s -> s

let lock_kind_of_op (op : Nt_spec.Datatype.op) : lock_kind =
  match op with
  | Nt_spec.Datatype.Read -> Read
  | Nt_spec.Datatype.Write _ -> Write
  | Nt_spec.Datatype.Incr _ -> Other "incr"
  | Nt_spec.Datatype.Decr _ -> Other "decr"
  | Nt_spec.Datatype.Get -> Other "get"
  | Nt_spec.Datatype.Deposit _ -> Other "deposit"
  | Nt_spec.Datatype.Withdraw _ -> Other "withdraw"
  | Nt_spec.Datatype.Balance -> Other "balance"
  | Nt_spec.Datatype.Insert _ -> Other "insert"
  | Nt_spec.Datatype.Remove _ -> Other "remove"
  | Nt_spec.Datatype.Member _ -> Other "member"
  | Nt_spec.Datatype.Size -> Other "size"
  | Nt_spec.Datatype.Enqueue _ -> Other "enqueue"
  | Nt_spec.Datatype.Dequeue -> Other "dequeue"
  | Nt_spec.Datatype.Kread _ -> Other "kread"
  | Nt_spec.Datatype.Kwrite _ -> Other "kwrite"
  | Nt_spec.Datatype.Vread -> Other "vread"
  | Nt_spec.Datatype.Vwrite _ -> Other "vwrite"

type t = {
  obj : Obj_id.t;
  create : Txn_id.t -> unit;
  inform_commit : Txn_id.t -> unit;
  inform_abort : Txn_id.t -> unit;
  try_respond : Txn_id.t -> Value.t option;
  waiting_on : Txn_id.t -> (Txn_id.t * lock_kind) list;
}

type factory = Nt_spec.Schema.t -> Obj_id.t -> t
