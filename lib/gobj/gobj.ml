open Nt_base

type t = {
  obj : Obj_id.t;
  create : Txn_id.t -> unit;
  inform_commit : Txn_id.t -> unit;
  inform_abort : Txn_id.t -> unit;
  try_respond : Txn_id.t -> Value.t option;
  waiting_on : Txn_id.t -> Txn_id.t list;
}

type factory = Nt_spec.Schema.t -> Obj_id.t -> t
