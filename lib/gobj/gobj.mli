(** Generic object automata (Section 5.1).

    A generic object is the component that carries out concurrency
    control and recovery for one object name: besides [Create] and
    [Request_commit] it receives [Inform_commit]/[Inform_abort] inputs
    reporting the fate of arbitrary transactions.  The runtime drives a
    generic object through this first-class interface; {!Nt_moss} and
    {!Nt_undo} provide the paper's two verified implementations, and
    {!Broken} provides deliberately incorrect ones used as negative
    controls for the serialization-graph checker.

    A [try_respond] returning [None] means the [Request_commit] output
    is not currently enabled (e.g. a lock conflict); the runtime will
    retry later, and uses [waiting_on] to pick deadlock victims. *)

open Nt_base

type lock_kind = Read | Write | Update | Other of string
(** What a blocking holder holds, in a protocol-neutral vocabulary:
    Moss locks are [Read]/[Write], commutativity-locking log entries
    map operation kinds onto the same names, and protocols with richer
    modes can use [Other].  Used for wait-for diagnostics and the
    lock-wait telemetry. *)

val lock_kind_string : lock_kind -> string
(** ["read"], ["write"], ["update"], or the [Other] payload. *)

val lock_kind_of_op : Nt_spec.Datatype.op -> lock_kind
(** The lock kind a logged operation represents, for protocols whose
    "locks" are log entries: [Read]/[Write] for the register
    operations, [Other] with the operation's name for the rest. *)

type t = {
  obj : Obj_id.t;
  create : Txn_id.t -> unit;  (** The [CREATE(T)] input. *)
  inform_commit : Txn_id.t -> unit;  (** [INFORM_COMMIT_AT(X)OF(T)]. *)
  inform_abort : Txn_id.t -> unit;  (** [INFORM_ABORT_AT(X)OF(T)]. *)
  try_respond : Txn_id.t -> Value.t option;
      (** Fire [REQUEST_COMMIT(T, v)] if enabled, returning [v];
          [None] when the precondition fails (caller retries). *)
  waiting_on : Txn_id.t -> (Txn_id.t * lock_kind) list;
      (** Diagnostic: the transactions whose locks / log entries
          currently block the given access, each tagged with the kind
          of lock held (empty when not blocked). *)
}

type factory = Nt_spec.Schema.t -> Obj_id.t -> t
(** A protocol: builds a fresh generic object for an object name. *)
