(** Generic object automata (Section 5.1).

    A generic object is the component that carries out concurrency
    control and recovery for one object name: besides [Create] and
    [Request_commit] it receives [Inform_commit]/[Inform_abort] inputs
    reporting the fate of arbitrary transactions.  The runtime drives a
    generic object through this first-class interface; {!Nt_moss} and
    {!Nt_undo} provide the paper's two verified implementations, and
    {!Broken} provides deliberately incorrect ones used as negative
    controls for the serialization-graph checker.

    A [try_respond] returning [None] means the [Request_commit] output
    is not currently enabled (e.g. a lock conflict); the runtime will
    retry later, and uses [waiting_on] to pick deadlock victims. *)

open Nt_base

type t = {
  obj : Obj_id.t;
  create : Txn_id.t -> unit;  (** The [CREATE(T)] input. *)
  inform_commit : Txn_id.t -> unit;  (** [INFORM_COMMIT_AT(X)OF(T)]. *)
  inform_abort : Txn_id.t -> unit;  (** [INFORM_ABORT_AT(X)OF(T)]. *)
  try_respond : Txn_id.t -> Value.t option;
      (** Fire [REQUEST_COMMIT(T, v)] if enabled, returning [v];
          [None] when the precondition fails (caller retries). *)
  waiting_on : Txn_id.t -> Txn_id.t list;
      (** Diagnostic: the transactions whose locks / log entries
          currently block the given access (empty when not blocked). *)
}

type factory = Nt_spec.Schema.t -> Obj_id.t -> t
(** A protocol: builds a fresh generic object for an object name. *)
