(** Well-formedness of simple behaviors (Section 2.3.1).

    The simple database embodies the constraints any reasonable
    transaction-processing system satisfies: no creations or
    completions without a prior request, no duplicate creations,
    completions, responses or reports, and reports only of completions
    that happened with the value actually requested.  We also check
    transaction well-formedness for the program-generated transaction
    automata: a transaction requests children only after it is created
    and before it requests to commit, requests each child at most once,
    and requests to commit only after every requested child reported.

    Behaviors of the serial executor and of the generic runtime must
    all pass this check (asserted throughout the test suite); the
    serialization-graph theorems are stated over such behaviors. *)

open Nt_base

type violation = { index : int; action : Action.t; reason : string }

val well_formed : System_type.t -> Trace.t -> (unit, violation) result
(** Check the whole trace (inform actions are ignored). *)

val is_well_formed : System_type.t -> Trace.t -> bool

val pp_violation : Format.formatter -> violation -> unit
