open Nt_base
open Nt_spec

type outcome = Found | Not_found | Out_of_fuel

let exists_matching_serial ?(fuel = 500_000) ?(for_txn = Txn_id.root)
    (schema : Schema.t) forest beta =
  let is_txn_event a =
    Action.is_serial a
    &&
    match Action.transaction a with
    | Some t -> Txn_id.equal t for_txn
    | None -> false
  in
  let target = Trace.to_list (Trace.proj_txn (Trace.serial beta) for_txn) in
  let target = Array.of_list target in
  let n_target = Array.length target in
  let auto0 = Serial_system.make ~allow_abort:(fun _ -> true) schema forest in
  let budget = ref fuel in
  let exception Stop of outcome in
  (* DFS: [k] is the number of target events already matched. *)
  let rec dfs auto k =
    if !budget <= 0 then raise (Stop Out_of_fuel);
    decr budget;
    let actions = Nt_iosim.Automaton.enabled auto in
    if actions = [] then k = n_target
    else
      List.exists
        (fun a ->
          if is_txn_event a then
            k < n_target
            && Action.equal a target.(k)
            && dfs (Nt_iosim.Automaton.fire auto a) (k + 1)
          else dfs (Nt_iosim.Automaton.fire auto a) k)
        actions
  in
  match dfs auto0 0 with
  | true -> Found
  | false -> Not_found
  | exception Stop o -> o

let serially_correct_ground_truth ?fuel ?for_txn schema forest beta =
  match exists_matching_serial ?fuel ?for_txn schema forest beta with
  | Found -> Some true
  | Not_found -> Some false
  | Out_of_fuel -> None
