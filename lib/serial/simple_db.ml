open Nt_base

type violation = { index : int; action : Action.t; reason : string }

type status = {
  mutable requested : bool;
  mutable created : bool;
  mutable commit_requested : Value.t option;
  mutable committed : bool;
  mutable aborted : bool;
  mutable reported : bool;
  mutable pending_children : int;  (* requested children not yet reported *)
}

let fresh () =
  {
    requested = false;
    created = false;
    commit_requested = None;
    committed = false;
    aborted = false;
    reported = false;
    pending_children = 0;
  }

let well_formed sys trace =
  let tbl = Txn_id.Tbl.create 64 in
  let stat t =
    match Txn_id.Tbl.find_opt tbl t with
    | Some s -> s
    | None ->
        let s = fresh () in
        Txn_id.Tbl.add tbl t s;
        s
  in
  (* T0 behaves as an always-created transaction. *)
  (stat Txn_id.root).created <- true;
  let error = ref None in
  let fail i a reason = if !error = None then error := Some { index = i; action = a; reason } in
  let n = Trace.length trace in
  for i = 0 to n - 1 do
    if !error = None then begin
      let a = Trace.get trace i in
      match a with
      | Action.Request_create t ->
          if Txn_id.is_root t then fail i a "REQUEST_CREATE of T0"
          else begin
            let p = stat (Txn_id.parent_exn t) and s = stat t in
            if s.requested then fail i a "duplicate REQUEST_CREATE"
            else if not p.created then fail i a "parent not created"
            else if p.commit_requested <> None then
              fail i a "parent already requested commit"
            else begin
              s.requested <- true;
              p.pending_children <- p.pending_children + 1
            end
          end
      | Action.Create t ->
          let s = stat t in
          if s.created then fail i a "duplicate CREATE"
          else if not s.requested then fail i a "CREATE without request"
          else if s.aborted || s.committed then fail i a "CREATE after completion"
          else s.created <- true
      | Action.Request_commit (t, v) ->
          let s = stat t in
          if s.commit_requested <> None then fail i a "duplicate REQUEST_COMMIT"
          else if not s.created then fail i a "REQUEST_COMMIT before CREATE"
          else if (not (System_type.is_access sys t)) && s.pending_children > 0
          then fail i a "REQUEST_COMMIT with unreported children"
          else s.commit_requested <- Some v
      | Action.Commit t ->
          let s = stat t in
          if s.committed || s.aborted then fail i a "duplicate completion"
          else if s.commit_requested = None then
            fail i a "COMMIT without REQUEST_COMMIT"
          else s.committed <- true
      | Action.Abort t ->
          let s = stat t in
          if s.committed || s.aborted then fail i a "duplicate completion"
          else if not s.requested then fail i a "ABORT without REQUEST_CREATE"
          else s.aborted <- true
      | Action.Report_commit (t, v) ->
          let s = stat t in
          if s.reported then fail i a "duplicate report"
          else if not s.committed then fail i a "REPORT_COMMIT without COMMIT"
          else if s.commit_requested <> Some v then
            fail i a "REPORT_COMMIT value mismatch"
          else begin
            s.reported <- true;
            let p = stat (Txn_id.parent_exn t) in
            p.pending_children <- p.pending_children - 1
          end
      | Action.Report_abort t ->
          let s = stat t in
          if s.reported then fail i a "duplicate report"
          else if not s.aborted then fail i a "REPORT_ABORT without ABORT"
          else begin
            s.reported <- true;
            let p = stat (Txn_id.parent_exn t) in
            p.pending_children <- p.pending_children - 1
          end
      | Action.Inform_commit _ | Action.Inform_abort _ -> ()
    end
  done;
  match !error with Some v -> Error v | None -> Ok ()

let is_well_formed sys trace =
  match well_formed sys trace with Ok () -> true | Error _ -> false

let pp_violation fmt { index; action; reason } =
  Format.fprintf fmt "event %d (%a): %s" index Action.pp action reason
