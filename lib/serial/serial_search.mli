(** Ground-truth serial correctness by search.

    Serial correctness for [T0] says: {e there exists} a serial
    behavior [gamma] with [gamma|T0 = beta|T0].  For small systems
    that existential can be decided outright: depth-first search over
    the serial-system automaton ({!Serial_system.make} with all aborts
    allowed), pruning any branch whose [T0]-projection diverges from
    the target.

    This is exponential and only for tiny workloads — its purpose is
    to validate the serialization-graph checker end-to-end: on every
    behavior the checker certifies, the search must find a witness
    (soundness of the whole pipeline), which the test suite asserts
    over all protocols including the broken ones. *)

open Nt_base
open Nt_spec

type outcome =
  | Found  (** A matching serial behavior exists. *)
  | Not_found  (** Exhaustive search found none. *)
  | Out_of_fuel  (** Budget exhausted before an answer. *)

val exists_matching_serial :
  ?fuel:int -> ?for_txn:Txn_id.t -> Schema.t -> Program.t list -> Trace.t ->
  outcome
(** [exists_matching_serial schema forest beta] searches for a serial
    behavior of the forest whose projection on [for_txn] (default
    [T0]) equals that of [serial beta] — the paper's serial
    correctness {e for an arbitrary transaction name}.  [fuel] bounds
    the number of explored search nodes (default 500_000). *)

val serially_correct_ground_truth :
  ?fuel:int -> ?for_txn:Txn_id.t -> Schema.t -> Program.t list -> Trace.t ->
  bool option
(** [Some b] when the search is conclusive, [None] on fuel
    exhaustion. *)
