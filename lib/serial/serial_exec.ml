open Nt_base
open Nt_spec

let run ?(should_abort = fun _ -> false) (schema : Schema.t) forest =
  let buf = ref [] in
  let emit a = buf := a :: !buf in
  let states = Obj_id.Tbl.create 16 in
  let state_of x =
    match Obj_id.Tbl.find_opt states x with
    | Some s -> s
    | None -> (schema.dtype_of x).Datatype.init
  in
  (* Runs [t] with program [prog]; returns the child summary for the
     parent's report value. *)
  let rec run_txn t prog =
    emit (Action.Request_create t);
    if should_abort t then begin
      emit (Action.Abort t);
      emit (Action.Report_abort t);
      Value.Pair (Value.Bool false, Value.Unit)
    end
    else begin
      emit (Action.Create t);
      let v =
        match prog with
        | Program.Access (x, op) ->
            let s', v = (schema.dtype_of x).Datatype.apply (state_of x) op in
            Obj_id.Tbl.replace states x s';
            v
        | Program.Node (_, children) ->
            let summaries =
              List.mapi (fun i p -> run_txn (Txn_id.child t i) p) children
            in
            Value.List summaries
      in
      emit (Action.Request_commit (t, v));
      emit (Action.Commit t);
      emit (Action.Report_commit (t, v));
      Value.Pair (Value.Bool true, v)
    end
  in
  List.iteri
    (fun i p -> ignore (run_txn (Txn_id.child Txn_id.root i) p))
    forest;
  Trace.of_list (List.rev !buf)

let final_states (schema : Schema.t) trace =
  let vis = Trace.visible (Trace.serial trace) ~to_:Txn_id.root in
  List.map
    (fun x ->
      let ops = Schema.operations schema vis x in
      let s =
        List.fold_left
          (fun s (op, _) -> fst ((schema.dtype_of x).Datatype.apply s op))
          (schema.dtype_of x).Datatype.init ops
      in
      (x, s))
    schema.objects
