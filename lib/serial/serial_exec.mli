(** The serial scheduler, as an executor (Sections 2.2.3–2.2.4).

    Runs a forest of top-level programs in a depth-first traversal of
    the transaction tree: siblings never overlap, every requested child
    is run to commitment (or aborted before creation, if the abort
    decider says so), and results are reported immediately.  The
    produced trace is a behavior of the serial system — the
    specification against which serial correctness is defined — and is
    used as ground truth in tests and as the zero-concurrency baseline
    in the benchmarks.

    A committed [Node] reports [Value.List] of one summary per child in
    order ([Pair (Bool true, v)] for a committed child with value [v],
    [Pair (Bool false, Unit)] for an aborted one); a committed access
    reports its operation's return value. *)

open Nt_base
open Nt_spec

val run :
  ?should_abort:(Txn_id.t -> bool) ->
  Schema.t ->
  Program.t list ->
  Trace.t
(** Execute the forest serially under the schema (normally the one from
    {!Program.schema_of} on the same forest).  [should_abort] lets the
    serial scheduler exercise its one permitted failure mode — aborting
    a transaction that was requested but never created (default:
    never).  The trace contains only serial actions. *)

val final_states : Schema.t -> Trace.t -> (Obj_id.t * Value.t) list
(** Replay a trace's committed-visible operations per object; the
    serial-system final object states.  Useful for comparing outcomes
    across protocols in examples and tests. *)
