open Nt_base
open Nt_spec

type comb = Seq | Par
type t = Access of Obj_id.t * Datatype.op | Node of comb * t list

let seq children = Node (Seq, children)
let par children = Node (Par, children)
let access x op = Access (x, op)

let subprogram forest txn =
  let rec walk progs = function
    | [] -> None
    | [ i ] -> List.nth_opt progs i
    | i :: rest -> (
        match List.nth_opt progs i with
        | Some (Node (_, children)) -> walk children rest
        | Some (Access _) | None -> None)
  in
  match Txn_id.path txn with [] -> None | path -> walk forest path

let schema_of ~objects forest =
  let find_dtype x =
    match List.find_opt (fun (y, _) -> Obj_id.equal x y) objects with
    | Some (_, dt) -> dt
    | None ->
        invalid_arg
          ("Program.schema_of: undeclared object " ^ Obj_id.name x)
  in
  (* Validate every access up front. *)
  let rec validate = function
    | Access (x, _) -> ignore (find_dtype x)
    | Node (_, children) -> List.iter validate children
  in
  List.iter validate forest;
  let classify txn =
    match subprogram forest txn with
    | Some (Access (x, _)) -> System_type.Access x
    | Some (Node _) | None -> System_type.Inner
  in
  let op_of txn =
    match subprogram forest txn with
    | Some (Access (_, op)) -> op
    | _ ->
        invalid_arg
          ("Program.schema_of: " ^ Txn_id.to_string txn ^ " is not an access")
  in
  {
    Schema.sys = System_type.make classify;
    objects = List.map fst objects;
    dtype_of = find_dtype;
    op_of;
  }

let rec size = function
  | Access _ -> 1
  | Node (_, children) -> 1 + List.fold_left (fun n p -> n + size p) 0 children

let rec accesses = function
  | Access (x, op) -> [ (x, op) ]
  | Node (_, children) -> List.concat_map accesses children

let rec pp fmt = function
  | Access (x, op) ->
      Format.fprintf fmt "%a.%a" Obj_id.pp x Datatype.pp_op op
  | Node (comb, children) ->
      Format.fprintf fmt "@[<hov 2>%s(%a)@]"
        (match comb with Seq -> "seq" | Par -> "par")
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
           pp)
        children
