(** Transaction programs.

    The paper treats transaction automata as black boxes constrained
    only by well-formedness.  To execute systems we need concrete
    members of that class: a program is a tree whose leaves are accesses
    and whose internal nodes create their children either sequentially
    (each child requested only after the previous one reported — which
    makes the [precedes] relation bite) or concurrently (all requested
    at once; only the generic system exploits the concurrency).

    A forest of top-level programs fully determines a system type: the
    [i]-th top-level program is child [i] of [T0], and the [j]-th
    sub-program of a node is its [j]-th child, so every reachable name
    classifies by walking the forest.  {!schema_of} packages this with
    the object declarations into a {!Nt_spec.Schema.t}. *)

open Nt_base
open Nt_spec

type comb =
  | Seq  (** Children one at a time, in order, awaiting each report. *)
  | Par  (** All children requested immediately after creation. *)

type t =
  | Access of Obj_id.t * Datatype.op  (** A leaf access. *)
  | Node of comb * t list  (** A non-access transaction. *)

val seq : t list -> t
val par : t list -> t
val access : Obj_id.t -> Datatype.op -> t

val subprogram : t list -> Txn_id.t -> t option
(** [subprogram forest t] walks the forest by [t]'s path; [None] when
    the name is outside the forest (or is the root). *)

val schema_of : objects:(Obj_id.t * Datatype.t) list -> t list -> Schema.t
(** The schema induced by a top-level forest: names inside the forest
    classify by their program node; everything else is a non-access.
    Raises [Invalid_argument] if a program accesses an undeclared
    object. *)

val size : t -> int
(** Total number of transaction names in the program (including
    itself). *)

val accesses : t -> (Obj_id.t * Datatype.op) list
(** All leaf accesses, left to right. *)

val pp : Format.formatter -> t -> unit
