open Nt_base
open Nt_spec

(* ----- transaction family component ----- *)

(* Pure interpreter state for one created non-access transaction. *)
type interp = {
  children : Program.t array;
  comb : Program.comb;
  next : int;
  awaiting : int;
  summaries : Value.t option array;
  commit_requested : bool;
  no_commit : bool;
}


let interp_of_node ~no_commit comb children =
  let children = Array.of_list children in
  {
    children;
    comb;
    next = 0;
    awaiting = 0;
    summaries = Array.make (Array.length children) None;
    commit_requested = false;
    no_commit;
  }

let interp_outputs txn it =
  if it.commit_requested then []
  else
    let n = Array.length it.children in
    let child_request =
      match it.comb with
      | Program.Seq ->
          if it.next < n && it.awaiting = 0 then
            [ Action.Request_create (Txn_id.child txn it.next) ]
          else []
      | Program.Par ->
          if it.next < n then
            [ Action.Request_create (Txn_id.child txn it.next) ]
          else []
    in
    if child_request <> [] then child_request
    else if it.next >= n && it.awaiting = 0 && not it.no_commit then
      let summaries =
        Array.to_list (Array.map Option.get it.summaries)
      in
      [ Action.Request_commit (txn, Value.List summaries) ]
    else []

let family_component ~top_comb (schema : Schema.t) forest =
  let is_node txn =
    (not (System_type.is_access schema.Schema.sys txn))
    && (Txn_id.is_root txn || Program.subprogram forest txn <> None)
  in
  let signature a =
    match a with
    | Action.Request_create t ->
        if is_node (Txn_id.parent_exn t) then `Output else `Not_mine
    | Action.Request_commit (t, _) ->
        if (not (Txn_id.is_root t)) && is_node t then `Output else `Not_mine
    | Action.Create t -> if (not (Txn_id.is_root t)) && is_node t then `Input else `Not_mine
    | Action.Report_commit (t, _) | Action.Report_abort t ->
        if is_node (Txn_id.parent_exn t) then `Input else `Not_mine
    | Action.Commit _ | Action.Abort _ | Action.Inform_commit _
    | Action.Inform_abort _ ->
        `Not_mine
  in
  let update_interp st txn f =
    match Txn_id.Map.find_opt txn st with
    | Some it -> Txn_id.Map.add txn (f it) st
    | None -> st
  in
  let note_requested it i =
    let next = if i >= it.next then i + 1 else it.next in
    { it with next; awaiting = it.awaiting + 1 }
  in
  let note_report it i summary =
    let summaries = Array.copy it.summaries in
    summaries.(i) <- Some summary;
    { it with summaries; awaiting = it.awaiting - 1 }
  in
  let step st a =
    match a with
    | Action.Request_create t ->
        update_interp st (Txn_id.parent_exn t) (fun it ->
            note_requested it (Option.get (Txn_id.last_index t)))
    | Action.Request_commit (t, _) ->
        update_interp st t (fun it -> { it with commit_requested = true })
    | Action.Create t -> (
        match Program.subprogram forest t with
        | Some (Program.Node (comb, children)) ->
            Txn_id.Map.add t (interp_of_node ~no_commit:false comb children) st
        | Some (Program.Access _) | None -> st)
    | Action.Report_commit (t, v) ->
        update_interp st (Txn_id.parent_exn t) (fun it ->
            note_report it
              (Option.get (Txn_id.last_index t))
              (Value.Pair (Value.Bool true, v)))
    | Action.Report_abort t ->
        update_interp st (Txn_id.parent_exn t) (fun it ->
            note_report it
              (Option.get (Txn_id.last_index t))
              (Value.Pair (Value.Bool false, Value.Unit)))
    | Action.Commit _ | Action.Abort _ | Action.Inform_commit _
    | Action.Inform_abort _ ->
        st
  in
  let enabled st =
    Txn_id.Map.fold (fun txn it acc -> interp_outputs txn it @ acc) st []
  in
  let initial =
    Txn_id.Map.singleton Txn_id.root
      (interp_of_node ~no_commit:true top_comb forest)
  in
  Nt_iosim.Automaton.component
    {
      Nt_iosim.Automaton.name = "transactions";
      state = initial;
      signature;
      step;
      enabled;
    }

(* ----- serial object component (the S_X of Section 3.1, generalized) ----- *)

type object_state = { active : Txn_id.t option; data : Value.t }

let object_component (schema : Schema.t) x =
  let dt = schema.Schema.dtype_of x in
  let mine t =
    match System_type.object_of schema.Schema.sys t with
    | Some y -> Obj_id.equal x y
    | None -> false
  in
  let signature a =
    match a with
    | Action.Create t when mine t -> `Input
    | Action.Request_commit (t, _) when mine t -> `Output
    | _ -> `Not_mine
  in
  let step st a =
    match a with
    | Action.Create t -> { st with active = Some t }
    | Action.Request_commit (t, _) when st.active = Some t ->
        let data, _ = dt.Datatype.apply st.data (schema.Schema.op_of t) in
        { active = None; data }
    | _ -> st
  in
  let enabled st =
    match st.active with
    | None -> []
    | Some t ->
        let _, v = dt.Datatype.apply st.data (schema.Schema.op_of t) in
        [ Action.Request_commit (t, v) ]
  in
  Nt_iosim.Automaton.component
    {
      Nt_iosim.Automaton.name = "object " ^ Obj_id.name x;
      state = { active = None; data = dt.Datatype.init };
      signature;
      step;
      enabled;
    }

(* ----- the serial scheduler ----- *)

type sched_state = {
  create_requested : Txn_id.Set.t;
  created : Txn_id.Set.t;
  commit_requested : Value.t Txn_id.Map.t;
  committed : Txn_id.Set.t;
  aborted : Txn_id.Set.t;
  reported : Txn_id.Set.t;
}

let scheduler_component ~allow_abort =
  let signature a =
    match a with
    | Action.Request_create _ | Action.Request_commit _ -> `Input
    | Action.Create _ | Action.Commit _ | Action.Abort _
    | Action.Report_commit _ | Action.Report_abort _ ->
        `Output
    | Action.Inform_commit _ | Action.Inform_abort _ -> `Not_mine
  in
  let step st a =
    match a with
    | Action.Request_create t ->
        { st with create_requested = Txn_id.Set.add t st.create_requested }
    | Action.Request_commit (t, v) ->
        { st with commit_requested = Txn_id.Map.add t v st.commit_requested }
    | Action.Create t -> { st with created = Txn_id.Set.add t st.created }
    | Action.Commit t -> { st with committed = Txn_id.Set.add t st.committed }
    | Action.Abort t -> { st with aborted = Txn_id.Set.add t st.aborted }
    | Action.Report_commit (t, _) | Action.Report_abort t ->
        { st with reported = Txn_id.Set.add t st.reported }
    | Action.Inform_commit _ | Action.Inform_abort _ -> st
  in
  let completed st t =
    Txn_id.Set.mem t st.committed || Txn_id.Set.mem t st.aborted
  in
  let live st t = Txn_id.Set.mem t st.created && not (completed st t) in
  let no_live_sibling st t =
    not (Txn_id.Set.exists (fun u -> Txn_id.siblings t u && live st u) st.created)
  in
  let enabled st =
    let creates_and_aborts =
      Txn_id.Set.fold
        (fun t acc ->
          if Txn_id.Set.mem t st.created || completed st t then acc
          else
            let acc =
              if no_live_sibling st t then Action.Create t :: acc else acc
            in
            if allow_abort t then Action.Abort t :: acc else acc)
        st.create_requested []
    in
    let commits =
      Txn_id.Map.fold
        (fun t _ acc -> if completed st t then acc else Action.Commit t :: acc)
        st.commit_requested []
    in
    let reports =
      Txn_id.Set.fold
        (fun t acc ->
          if Txn_id.Set.mem t st.reported then acc
          else
            match Txn_id.Map.find_opt t st.commit_requested with
            | Some v -> Action.Report_commit (t, v) :: acc
            | None -> acc)
        st.committed []
      @ Txn_id.Set.fold
          (fun t acc ->
            if Txn_id.Set.mem t st.reported then acc
            else Action.Report_abort t :: acc)
          st.aborted []
    in
    creates_and_aborts @ commits @ reports
  in
  Nt_iosim.Automaton.component
    {
      Nt_iosim.Automaton.name = "serial scheduler";
      state =
        {
          create_requested = Txn_id.Set.empty;
          created = Txn_id.Set.empty;
          commit_requested = Txn_id.Map.empty;
          committed = Txn_id.Set.empty;
          aborted = Txn_id.Set.empty;
          reported = Txn_id.Set.empty;
        };
      signature;
      step;
      enabled;
    }

let make ?(allow_abort = fun _ -> false) ?(top_comb = Program.Par)
    (schema : Schema.t) forest =
  Nt_iosim.Automaton.compose
    (family_component ~top_comb schema forest
    :: scheduler_component ~allow_abort
    :: List.map (fun x -> object_component schema x) schema.Schema.objects)

let run ?allow_abort ?top_comb ?max_steps ~seed schema forest =
  let auto = make ?allow_abort ?top_comb schema forest in
  fst (Nt_iosim.Executor.run ?max_steps ~seed auto)
