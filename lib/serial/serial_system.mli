(** The serial system as a composition of I/O automata (Sections
    2.2.3–2.2.4).

    Unlike {!Serial_exec}, which produces one canonical depth-first
    behavior, this module builds the paper's serial system as a genuine
    composition — a transaction-family component interpreting the
    programs, one serial object automaton per object name, and the
    {e serial scheduler} automaton — and lets the {!Nt_iosim.Executor}
    explore its full nondeterminism: any interleaving of enabled
    scheduler choices, including aborting transactions that were
    requested but never created ([allow_abort]).

    Every behavior of this composition is a serial behavior; the test
    suite checks them all well-formed and serially correct for [T0],
    and uses them as the ground-truth family against which the
    checker's "there exists a serial behavior" claim is meaningful.

    The serial scheduler's preconditions, from the paper: a [CREATE(T)]
    needs a prior request, no prior completion, and {e no live sibling}
    (siblings run serially); an [ABORT(T)] additionally requires [T]
    was never created; a [COMMIT(T)] needs a commit request; reports
    follow completions. *)

open Nt_base
open Nt_spec

val make :
  ?allow_abort:(Txn_id.t -> bool) ->
  ?top_comb:Program.comb ->
  Schema.t ->
  Program.t list ->
  Nt_iosim.Automaton.t
(** The composed serial system for a top-level forest.  [allow_abort]
    marks the transactions the scheduler may (nondeterministically)
    choose to abort instead of create (default: none); [top_comb] is
    [T0]'s issuing discipline (default [Par], matching the generic
    runtime, so that [T0]-projections are comparable across the two
    systems). *)

val run :
  ?allow_abort:(Txn_id.t -> bool) ->
  ?top_comb:Program.comb ->
  ?max_steps:int ->
  seed:int ->
  Schema.t ->
  Program.t list ->
  Trace.t
(** Compose and execute with the seeded random executor. *)
