(* ntprof: root-cause reports over JSONL telemetry traces.

   Point it at one or more traces produced with
   `ntsim --obs-format jsonl --obs-out FILE` (multiple files merge into
   one profile) and it prints the contention report: top-K contended
   objects with wait-time quantiles, the hottest serialization-graph
   edges with their witnessing actions, abort/alarm causes, and the
   metrics registry.  Optionally writes the rebuilt SG as annotated
   DOT (--dot) and the registry as Prometheus text (--prom).

   Examples:
     ntsim -p commlock --obs-format jsonl --obs-out run.jsonl
     ntprof run.jsonl
     ntprof --top 5 --dot sg.dot --prom metrics.prom run1.jsonl run2.jsonl *)

open Core
open Cmdliner

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_cmd files top dot_path prom_path =
  let profiles =
    List.map
      (fun path ->
        let p = Profile.create () in
        (try
           List.iter
             (fun e -> Format.eprintf "warning: %s@." e)
             (Profile.load p path)
         with Sys_error e ->
           Format.eprintf "ntprof: %s@." e;
           exit 2);
        p)
      files
  in
  let p =
    match profiles with
    | [] -> assert false (* Arg.non_empty *)
    | first :: rest ->
        List.iter (fun q -> Profile.merge first q) rest;
        first
  in
  if Profile.events p = 0 then
    Format.eprintf "ntprof: no events parsed from %s@."
      (String.concat ", " files);
  Format.printf "%a" (Profile.report ~top) p;
  (match dot_path with
  | Some path ->
      write_file path (Profile.dot p);
      Format.printf "serialization graph written to %s (graphviz%s)@." path
        (if Profile.has_cycle p then ", cycle highlighted" else "")
  | None -> ());
  (match prom_path with
  | Some "-" -> print_string (Profile.prometheus p)
  | Some path ->
      write_file path (Profile.prometheus p);
      Format.printf "metrics written to %s (prometheus text)@." path
  | None -> ());
  if Profile.events p = 0 then exit 1

let cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "JSONL telemetry trace(s) from ntsim/ntstress --obs-format \
             jsonl.  Multiple files are merged into one profile.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "k"; "top" ] ~docv:"K"
          ~doc:"Rows in the top-contended-objects and hottest-edges tables.")
  in
  let dot_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the serialization graph rebuilt from the trace as \
             Graphviz DOT, edges labelled with their witnessing actions \
             and any cycle highlighted.")
  in
  let prom_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry as Prometheus text exposition \
             ($(b,-) for stdout).")
  in
  let term = Term.(const run_cmd $ files $ top $ dot_path $ prom_path) in
  Cmd.v
    (Cmd.info "ntprof" ~version:Version.string
       ~doc:
         "Contention and conflict-attribution reports over nested-sg \
          telemetry traces.")
    term

let () = exit (Cmd.eval cmd)
