(* ntprof: root-cause reports over JSONL telemetry traces and flight
   dumps.

   Point it at one or more traces produced with
   `ntsim --obs-format jsonl --obs-out FILE` (multiple files merge into
   one profile) and it prints the contention report: top-K contended
   objects with wait-time quantiles, the hottest serialization-graph
   edges with their witnessing actions, abort/alarm causes, and the
   metrics registry.  Optionally writes the rebuilt SG as annotated
   DOT (--dot) and the registry as Prometheus text (--prom).

   Flight-recorder dumps from ntserved (flight-*.jsonl, first line
   {"ev":"flight",...}) are detected automatically (or forced with
   --flight) and get the stage report instead: the critical path across
   the dump, per-stage exclusive-time quantiles, and the slowest
   requests with their stage breakdowns.  --folded writes folded-stack
   lines for flamegraph.pl / speedscope.

   Examples:
     ntsim -p commlock --obs-format jsonl --obs-out run.jsonl
     ntprof run.jsonl
     ntprof --top 5 --dot sg.dot --prom metrics.prom run1.jsonl run2.jsonl
     ntprof flight-001-slow.jsonl --folded stacks.txt *)

open Core
open Cmdliner

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* A flight dump leads with the recorder header (or, defensively, any
   stage span); everything else is an event trace. *)
let looks_like_flight path =
  match open_in path with
  | exception Sys_error _ -> false
  | ic ->
      let rec first () =
        match input_line ic with
        | exception End_of_file -> None
        | l when String.trim l = "" -> first ()
        | l -> Some l
      in
      let line = first () in
      close_in ic;
      (match line with
      | None -> false
      | Some l -> (
          match Obs_json.parse (String.trim l) with
          | Error _ -> false
          | Ok j -> (
              match Obs_json.member "ev" j with
              | Some (Obs_json.Str ("flight" | "stage")) -> true
              | _ -> false)))

let run_flight files top folded_path =
  let f = Flight.create () in
  List.iter
    (fun path ->
      try
        List.iter
          (fun e -> Format.eprintf "warning: %s@." e)
          (Flight.load f path)
      with Sys_error e ->
        Format.eprintf "ntprof: %s@." e;
        exit 2)
    files;
  if Flight.spans f = [] then begin
    Format.eprintf "ntprof: no spans parsed from %s@."
      (String.concat ", " files);
    exit 1
  end;
  Format.printf "%a" (Flight.report ~top) f;
  match folded_path with
  | Some "-" -> print_string (Flight.folded f)
  | Some path ->
      write_file path (Flight.folded f);
      Format.printf "@.folded stacks written to %s (flamegraph.pl input)@."
        path
  | None -> ()

let run_profile files top dot_path prom_path =
  let profiles =
    List.map
      (fun path ->
        let p = Profile.create () in
        (try
           List.iter
             (fun e -> Format.eprintf "warning: %s@." e)
             (Profile.load p path)
         with Sys_error e ->
           Format.eprintf "ntprof: %s@." e;
           exit 2);
        p)
      files
  in
  let p =
    match profiles with
    | [] -> assert false (* Arg.non_empty *)
    | first :: rest ->
        List.iter (fun q -> Profile.merge first q) rest;
        first
  in
  if Profile.events p = 0 then
    Format.eprintf "ntprof: no events parsed from %s@."
      (String.concat ", " files);
  Format.printf "%a" (Profile.report ~top) p;
  (match dot_path with
  | Some path ->
      write_file path (Profile.dot p);
      Format.printf "serialization graph written to %s (graphviz%s)@." path
        (if Profile.has_cycle p then ", cycle highlighted" else "")
  | None -> ());
  (match prom_path with
  | Some "-" -> print_string (Profile.prometheus p)
  | Some path ->
      write_file path (Profile.prometheus p);
      Format.printf "metrics written to %s (prometheus text)@." path
  | None -> ());
  if Profile.events p = 0 then exit 1

let run_cmd files top dot_path prom_path flight folded_path =
  if flight || List.exists looks_like_flight files then
    run_flight files top folded_path
  else run_profile files top dot_path prom_path

let cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "JSONL telemetry trace(s) from ntsim/ntstress --obs-format \
             jsonl, or flight-recorder dump(s) from ntserved.  Multiple \
             files are merged into one report.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "k"; "top" ] ~docv:"K"
          ~doc:
            "Rows in the top-contended-objects / hottest-edges / \
             slowest-requests tables.")
  in
  let dot_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the serialization graph rebuilt from the trace as \
             Graphviz DOT, edges labelled with their witnessing actions \
             and any cycle highlighted.")
  in
  let prom_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Write the metrics registry as Prometheus text exposition \
             ($(b,-) for stdout).")
  in
  let flight =
    Arg.(
      value & flag
      & info [ "flight" ]
          ~doc:
            "Treat the inputs as flight-recorder dumps even if the \
             header line is missing (normally auto-detected).")
  in
  let folded_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "With flight dumps: write folded-stack lines (exclusive µs \
             per stage path) for flamegraph.pl or speedscope ($(b,-) \
             for stdout).")
  in
  let term =
    Term.(
      const run_cmd $ files $ top $ dot_path $ prom_path $ flight
      $ folded_path)
  in
  Cmd.v
    (Cmd.info "ntprof" ~version:Version.string
       ~doc:
         "Contention, conflict-attribution and stage-timing reports \
          over nested-sg telemetry traces and ntserved flight dumps.")
    term

let () = exit (Cmd.eval cmd)
