(* ntstress: a long-running randomized model-checking campaign.

   The test suite keeps its seed counts CI-sized; this binary runs the
   same assertion battery over as many seeds as you give it — the
   "leave it running overnight" tool.  For every (protocol x profile x
   seed) it executes the generic system and asserts:

   - generic/simple well-formedness of the behavior;
   - the protocol's correctness theorem (SG checker for
     completion-order protocols, Theorem 2 with the pseudotime order
     for MVTS);
   - on a sample of object projections, the per-protocol lemma
     invariants (Moss Lemmas 9/10/12-13, undo Lemmas 20/22);
   - that the online SG monitor raises no alarm (completion-order
     protocols only: under pseudotime ordering the completion-order SG
     is legitimately cyclic, so MVTS is exempt).

   Any failure prints the seed and a diagnosis and exits nonzero, so
   the campaign is reproducible.

   Usage: ntstress [seeds-per-cell] [--seed N] [--obs-out FILE]
                   [--obs-format jsonl|chrome|table]
                   [--perf-budget SECONDS]
   (default 50 seeds per cell; telemetry of the whole campaign is
   aggregated into one recorder, so --obs-format table summarizes
   thousands of runs and jsonl/chrome stream every run's spans)

   --seed N runs exactly seed N in every cell — the exact-replay knob
   for a seed printed by a FAIL line.

   --perf-budget SECONDS fails the campaign (exit 1) if its wall time
   exceeds the budget — CI uses this as a cheap regression tripwire
   for the monitor's incremental detection path. *)

open Core

type verdict_kind = Sg_checker | Pseudotime

let protocols =
  [
    ("moss", Moss_object.factory, Sg_checker, true);
    ("commlock", Commlock_object.factory, Sg_checker, false);
    ("undo", Undo_object.factory, Sg_checker, false);
    ("mvts", Mvts_object.factory, Pseudotime, true);
  ]

let profiles =
  [
    ("flat-hot", Gen.registers, { Gen.default with n_top = 8; depth = 1; n_objects = 1 });
    ("nested", Gen.registers, { Gen.default with n_top = 6; depth = 3; n_objects = 3 });
    ("counters", Gen.counters, { Gen.default with n_top = 8; depth = 2; n_objects = 2 });
    ("mixed", Gen.mixed, { Gen.default with n_top = 6; depth = 2; n_objects = 6 });
    ( "skewed",
      Gen.registers,
      { Gen.default with n_top = 8; depth = 2; n_objects = 4; theta = 1.0 } );
  ]

let check_lemmas name schema (trace : Trace.t) =
  match name with
  | "moss" ->
      List.for_all
        (fun x ->
          let proj = Moss_invariants.project schema x trace in
          Moss_invariants.lemma9 schema x proj
          && Moss_invariants.lemma10 schema x proj
          && Moss_invariants.lemma12_13 schema x proj)
        schema.Schema.objects
  | "undo" ->
      List.for_all
        (fun x ->
          let proj = Undo_invariants.project schema x trace in
          Undo_invariants.lemma20 schema x proj
          && Undo_invariants.lemma22 schema x proj)
        schema.Schema.objects
  | _ -> true

let usage () =
  prerr_endline
    "usage: ntstress [seeds-per-cell] [--seed N] [--obs-out FILE] \
     [--obs-format jsonl|chrome|table] [--perf-budget SECONDS] [--version]";
  exit 2

let () =
  let seeds_per_cell = ref 50
  and seed_only = ref None
  and obs_out = ref None
  and obs_format = ref None
  and perf_budget = ref None in
  let rec parse = function
    | [] -> ()
    | "--version" :: _ ->
        print_endline Version.string;
        exit 0
    | "--seed" :: s :: rest ->
        (match int_of_string_opt s with
        | Some n -> seed_only := Some n
        | None -> usage ());
        parse rest
    | "--perf-budget" :: s :: rest ->
        (match float_of_string_opt s with
        | Some b when b > 0.0 -> perf_budget := Some b
        | _ -> usage ());
        parse rest
    | "--obs-out" :: path :: rest ->
        obs_out := Some path;
        parse rest
    | "--obs-format" :: fmt :: rest ->
        (match fmt with
        | "jsonl" | "chrome" | "table" -> obs_format := Some fmt
        | _ -> usage ());
        parse rest
    | arg :: rest -> (
        match int_of_string_opt arg with
        | Some n when n > 0 ->
            seeds_per_cell := n;
            parse rest
        | _ -> usage ())
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seeds =
    match !seed_only with
    | Some s -> [ s ]
    | None -> List.init !seeds_per_cell (fun i -> i + 1)
  in
  let obs, finish_obs =
    match (!obs_format, !obs_out) with
    | None, None -> (Obs.null, fun () -> ())
    | fmt, out ->
        let fmt = Option.value ~default:"table" fmt in
        let sink =
          match (fmt, out) with
          | "jsonl", Some path -> Obs_sink.jsonl_file path
          | "chrome", Some path -> Chrome_trace.sink_file path
          | ("jsonl" | "chrome"), None ->
              prerr_endline "--obs-format jsonl/chrome requires --obs-out";
              exit 2
          | _ -> Obs_sink.null
        in
        let obs = Obs.create ~sink () in
        ( obs,
          fun () ->
            Obs.close obs;
            (match (fmt, out) with
            | "table", Some path ->
                let oc = open_out path in
                let f = Format.formatter_of_out_channel oc in
                Format.fprintf f "%a@." Metrics.pp (Obs.metrics obs);
                close_out oc
            | _ -> ());
            Format.printf "campaign metrics:@.%a@." Metrics.pp
              (Obs.metrics obs) )
  in
  let total = ref 0 and failures = ref 0 in
  let t0 = Sys.time () in
  let wall0 = Unix.gettimeofday () in
  List.iter
    (fun (pname, factory, kind, rw_only) ->
      List.iter
        (fun (wname, gen, profile) ->
          let is_rw =
            Schema.all_read_write (snd (Gen.forest_and_schema gen ~seed:1 profile))
          in
          if (not rw_only) || is_rw then
            List.iter (fun seed ->
              incr total;
              let forest, schema = Gen.forest_and_schema gen ~seed profile in
              (* Alternate policies, abort rates and inform latencies. *)
              let policy =
                if seed mod 2 = 0 then Runtime.Bsp_rounds else Runtime.Random_step
              in
              let inform_policy =
                if seed mod 3 = 0 then Runtime.Lazy else Runtime.Eager
              in
              let abort_prob = if seed mod 4 = 0 then 0.08 else 0.0 in
              let r =
                Runtime.run ~policy ~inform_policy ~abort_prob ~obs ~seed
                  schema factory forest
              in
              let ok_wf = Simple_db.is_well_formed schema.Schema.sys r.trace in
              let ok_thm =
                match kind with
                | Sg_checker -> Checker.serially_correct schema r.trace
                | Pseudotime ->
                    Theorem2.holds schema
                      (Sibling_order.index_order (Trace.serial r.trace))
                      r.trace
              in
              let ok_lemmas =
                seed mod 5 <> 0 || check_lemmas pname schema r.trace
              in
              let ok_monitor =
                match kind with
                | Pseudotime -> true
                | Sg_checker ->
                    let m = Monitor.create schema in
                    let alarms = Monitor.feed_trace m r.trace in
                    List.iter
                      (fun (i, a) ->
                        match a with
                        | Monitor.Cycle c ->
                            Format.printf
                              "ALARM %s/%s seed %d: event %d closed a cycle \
                               %s@.%s"
                              pname wname seed i
                              (String.concat " -> "
                                 (List.map Txn_id.to_string c))
                              (Monitor.explain_cycle m c)
                        | Monitor.Inappropriate x ->
                            Format.printf
                              "ALARM %s/%s seed %d: event %d made %s's \
                               returns impossible@."
                              pname wname seed i (Obj_id.name x))
                      alarms;
                    (* No alarm ⇒ the incremental detector still holds a
                       topological order, so a witness sibling order for
                       Theorem 8 must be available for free. *)
                    alarms = [] && Monitor.witness_order m <> None
              in
              if not (ok_wf && ok_thm && ok_lemmas && ok_monitor) then begin
                incr failures;
                Format.printf
                  "FAIL %s/%s seed %d (wf %b, thm %b, lemmas %b, monitor %b)@."
                  pname wname seed ok_wf ok_thm ok_lemmas ok_monitor;
                Format.printf "  replay: ntstress --seed %d@." seed;
                if not ok_thm && kind = Sg_checker then
                  print_string (Checker.explain schema r.trace)
              end)
            seeds)
        profiles)
    protocols;
  Format.printf "ntstress: %d runs, %d failures, %.1f s@." !total !failures
    (Sys.time () -. t0);
  finish_obs ();
  let wall = Unix.gettimeofday () -. wall0 in
  let over_budget =
    match !perf_budget with
    | Some budget when wall > budget ->
        Format.printf "PERF BUDGET EXCEEDED: %.1f s wall > %.1f s budget@."
          wall budget;
        true
    | Some budget ->
        Format.printf "perf budget: %.1f s wall <= %.1f s budget@." wall budget;
        false
    | None -> false
  in
  if !failures > 0 || over_budget then exit 1
