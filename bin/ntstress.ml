(* ntstress: a long-running randomized model-checking campaign.

   The test suite keeps its seed counts CI-sized; this binary runs the
   same assertion battery over as many seeds as you give it — the
   "leave it running overnight" tool.  For every (protocol x profile x
   seed) it executes the generic system and asserts:

   - generic/simple well-formedness of the behavior;
   - the protocol's correctness theorem (SG checker for
     completion-order protocols, Theorem 2 with the pseudotime order
     for MVTS);
   - on a sample of object projections, the per-protocol lemma
     invariants (Moss Lemmas 9/10/12-13, undo Lemmas 20/22).

   Any failure prints the seed and a diagnosis and exits nonzero, so
   the campaign is reproducible.

   Usage: ntstress [seeds-per-cell]          (default 50) *)

open Core

type verdict_kind = Sg_checker | Pseudotime

let protocols =
  [
    ("moss", Moss_object.factory, Sg_checker, true);
    ("commlock", Commlock_object.factory, Sg_checker, false);
    ("undo", Undo_object.factory, Sg_checker, false);
    ("mvts", Mvts_object.factory, Pseudotime, true);
  ]

let profiles =
  [
    ("flat-hot", Gen.registers, { Gen.default with n_top = 8; depth = 1; n_objects = 1 });
    ("nested", Gen.registers, { Gen.default with n_top = 6; depth = 3; n_objects = 3 });
    ("counters", Gen.counters, { Gen.default with n_top = 8; depth = 2; n_objects = 2 });
    ("mixed", Gen.mixed, { Gen.default with n_top = 6; depth = 2; n_objects = 6 });
    ( "skewed",
      Gen.registers,
      { Gen.default with n_top = 8; depth = 2; n_objects = 4; theta = 1.0 } );
  ]

let check_lemmas name schema (trace : Trace.t) =
  match name with
  | "moss" ->
      List.for_all
        (fun x ->
          let proj = Moss_invariants.project schema x trace in
          Moss_invariants.lemma9 schema x proj
          && Moss_invariants.lemma10 schema x proj
          && Moss_invariants.lemma12_13 schema x proj)
        schema.Schema.objects
  | "undo" ->
      List.for_all
        (fun x ->
          let proj = Undo_invariants.project schema x trace in
          Undo_invariants.lemma20 schema x proj
          && Undo_invariants.lemma22 schema x proj)
        schema.Schema.objects
  | _ -> true

let () =
  let seeds_per_cell =
    match Sys.argv with
    | [| _ |] -> 50
    | [| _; n |] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> n
        | _ ->
            prerr_endline "usage: ntstress [seeds-per-cell]";
            exit 2)
    | _ ->
        prerr_endline "usage: ntstress [seeds-per-cell]";
        exit 2
  in
  let total = ref 0 and failures = ref 0 in
  let t0 = Sys.time () in
  List.iter
    (fun (pname, factory, kind, rw_only) ->
      List.iter
        (fun (wname, gen, profile) ->
          let is_rw =
            Schema.all_read_write (snd (Gen.forest_and_schema gen ~seed:1 profile))
          in
          if (not rw_only) || is_rw then
            for seed = 1 to seeds_per_cell do
              incr total;
              let forest, schema = Gen.forest_and_schema gen ~seed profile in
              (* Alternate policies, abort rates and inform latencies. *)
              let policy =
                if seed mod 2 = 0 then Runtime.Bsp_rounds else Runtime.Random_step
              in
              let inform_policy =
                if seed mod 3 = 0 then Runtime.Lazy else Runtime.Eager
              in
              let abort_prob = if seed mod 4 = 0 then 0.08 else 0.0 in
              let r =
                Runtime.run ~policy ~inform_policy ~abort_prob ~seed schema
                  factory forest
              in
              let ok_wf = Simple_db.is_well_formed schema.Schema.sys r.trace in
              let ok_thm =
                match kind with
                | Sg_checker -> Checker.serially_correct schema r.trace
                | Pseudotime ->
                    Theorem2.holds schema
                      (Sibling_order.index_order (Trace.serial r.trace))
                      r.trace
              in
              let ok_lemmas =
                seed mod 5 <> 0 || check_lemmas pname schema r.trace
              in
              if not (ok_wf && ok_thm && ok_lemmas) then begin
                incr failures;
                Format.printf "FAIL %s/%s seed %d (wf %b, thm %b, lemmas %b)@."
                  pname wname seed ok_wf ok_thm ok_lemmas;
                if not ok_thm && kind = Sg_checker then
                  print_string (Checker.explain schema r.trace)
              end
            done)
        profiles)
    protocols;
  Format.printf "ntstress: %d runs, %d failures, %.1f s@." !total !failures
    (Sys.time () -. t0);
  if !failures > 0 then exit 1
