(* ntwal: inspect and verify ntserved write-ahead logs.

     ntwal dump FILE            pretty-print a log or snapshot, with the
                                torn-tail diagnosis the recovery path
                                would act on
     ntwal verify FILE --socket PATH
                                connect to a (recovered) server and
                                Status-query every Outcome record in the
                                log: the durability contract says each
                                acknowledged completion in the intact
                                prefix must be reproduced exactly

   The verify half is what the CI crash-smoke job runs after kill -9 +
   restart: it asserts the prefix-closure property end to end, over the
   wire, against the replayed engine. *)

open Core
open Cmdliner

let read_whole path =
  match open_in_bin path with
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Ok s
  | exception Sys_error e -> Error e

let pp_outcome fmt = function
  | Wal.Committed v -> Format.fprintf fmt "committed %s" v
  | Wal.Aborted None -> Format.fprintf fmt "aborted"
  | Wal.Aborted (Some w) -> Format.fprintf fmt "aborted (veto: %s)" w

let pp_record fmt = function
  | Wal.Meta { seed; backend; policy; inform; abort_prob; objects } ->
      Format.fprintf fmt "meta seed=%d backend=%s policy=%s inform=%s \
                          abort-prob=%g objects=[%s]"
        seed backend policy inform abort_prob
        (String.concat " " (List.map fst objects))
  | Wal.Submit { req; client; program } ->
      Format.fprintf fmt "submit client=%s%s %s" client
        (match req with Some r -> " req=" ^ r | None -> "")
        (String.trim program)
  | Wal.Kill { txn } -> Format.fprintf fmt "kill %s" (Txn_id.to_string txn)
  | Wal.Steps n -> Format.fprintf fmt "steps %d" n
  | Wal.Outcome { txn; outcome } ->
      Format.fprintf fmt "outcome %s %a" (Txn_id.to_string txn) pp_outcome
        outcome
  | Wal.Sg_state { nodes; edges } ->
      Format.fprintf fmt "sg-state %d nodes, %d edges" (Array.length nodes)
        (List.length edges)
  | Wal.Counts { submitted; committed; aborted; vetoed } ->
      Format.fprintf fmt
        "counts submitted=%d committed=%d aborted=%d vetoed=%d" submitted
        committed aborted vetoed

let dump_scanned what (sc : Wal.scanned) =
  Format.printf "%s: base-seq %d, %d records, %d valid bytes@." what
    sc.Wal.sc_base_seq
    (List.length sc.Wal.sc_records)
    sc.Wal.sc_valid;
  List.iteri
    (fun i r ->
      let off = List.nth sc.Wal.sc_offsets i in
      Format.printf "  %6d @%-8d %a@." (sc.Wal.sc_base_seq + i) off pp_record
        r)
    sc.Wal.sc_records;
  match sc.Wal.sc_tail with
  | Wal.Clean -> Format.printf "  tail: clean@."
  | Wal.Torn { valid; why } ->
      Format.printf "  tail: TORN after byte %d (%s)@." valid why

let dump_cmd file =
  match read_whole file with
  | Error e ->
      Format.eprintf "ntwal: %s@." e;
      exit 2
  | Ok image -> (
      match Wal.scan ~magic:Wal.wal_magic image with
      | Ok sc ->
          dump_scanned "log" sc;
          if sc.Wal.sc_tail <> Wal.Clean then exit 1
      | Error _ -> (
          (* not a log: try the snapshot magic before giving up *)
          match Wal.decode_snapshot image with
          | Ok sn ->
              Format.printf "snapshot: covers seq < %d@." sn.Wal.sn_next_seq;
              Format.printf "  %a@." pp_record sn.Wal.sn_meta;
              List.iter
                (fun r -> Format.printf "  %a@." pp_record r)
                sn.Wal.sn_events;
              Format.printf "  %a@." pp_record sn.Wal.sn_sg;
              Format.printf "  %a@." pp_record sn.Wal.sn_counts
          | Error e ->
              Format.eprintf "ntwal: %s: %s@." file e;
              exit 2))

(* ----- verify: the prefix closure, over the wire ----- *)

let connect addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let rec go n =
    match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 0 ->
        Unix.sleepf 0.1;
        go (n - 1)
  in
  go 50;
  fd

let write_all fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  go 0

(* One blocking request/response exchange (the connection is ours and
   the server answers in order). *)
let rpc fd reader req =
  write_all fd (Wire.encode_request req);
  let b = Bytes.create 8192 in
  let rec next () =
    match Wire.Reader.next reader with
    | Ok (Some payload) -> (
        match Wire.decode_response payload with
        | Ok resp -> resp
        | Error e -> failwith e)
    | Ok None -> (
        match Unix.read fd b 0 (Bytes.length b) with
        | 0 -> failwith "connection closed"
        | n ->
            Wire.Reader.feed reader (Bytes.sub_string b 0 n);
            next ())
    | Error e -> failwith e
  in
  next ()

let verify_cmd file socket port =
  let addr =
    match (socket, port) with
    | Some path, None -> Unix.ADDR_UNIX path
    | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | _ ->
        Format.eprintf "ntwal: pass exactly one of --socket or --port@.";
        exit 2
  in
  let image =
    match read_whole file with
    | Ok s -> s
    | Error e ->
        Format.eprintf "ntwal: %s@." e;
        exit 2
  in
  let sc =
    match Wal.scan ~magic:Wal.wal_magic image with
    | Ok sc -> sc
    | Error e ->
        Format.eprintf "ntwal: %s: %s@." file e;
        exit 2
  in
  let outcomes =
    List.filter_map
      (function Wal.Outcome { txn; outcome } -> Some (txn, outcome) | _ -> None)
      sc.Wal.sc_records
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = connect addr in
  Unix.clear_nonblock fd;
  let reader = Wire.Reader.create () in
  (match rpc fd reader (Wire.Hello { client = "ntwal" }) with
  | Wire.Welcome _ -> ()
  | _ -> failwith "expected Welcome");
  (* wait out an in-flight recovery: the contract holds only once the
     replay has completed and been validated *)
  let rec wait_recovered () =
    match rpc fd reader Wire.Ping with
    | Wire.Pong { status = Wire.Recovering { replayed; total }; _ } ->
        Format.printf "ntwal: server recovering (%d/%d)...@." replayed total;
        Unix.sleepf 0.1;
        wait_recovered ()
    | Wire.Pong { status; _ } -> status
    | _ -> failwith "expected Pong"
  in
  let status = wait_recovered () in
  let mismatches = ref 0 in
  List.iter
    (fun (txn, logged) ->
      let state =
        match rpc fd reader (Wire.Status txn) with
        | Wire.State { state; _ } -> state
        | _ -> failwith "expected State"
      in
      let ok =
        match (logged, state) with
        | Wal.Committed v, Wire.Committed v' -> String.equal v v'
        | Wal.Aborted _, Wire.Aborted _ -> true
        | _ -> false
      in
      if not ok then begin
        incr mismatches;
        Format.printf "ntwal: MISMATCH %s: logged %a, served %s@."
          (Txn_id.to_string txn) pp_outcome logged
          (match state with
          | Wire.Committed v -> "committed " ^ v
          | Wire.Aborted _ -> "aborted"
          | Wire.Pending -> "pending"
          | Wire.Running -> "running")
      end)
    outcomes;
  (try Unix.close fd with _ -> ());
  Format.printf "ntwal: %d outcomes verified against %s server, %d mismatches%s@."
    (List.length outcomes)
    (match status with
    | Wire.Fresh -> "fresh"
    | Wire.Recovered { torn = true; _ } -> "recovered (torn tail)"
    | Wire.Recovered _ -> "recovered"
    | Wire.Recovering _ -> "recovering")
    !mismatches
    (match sc.Wal.sc_tail with
    | Wal.Clean -> ""
    | Wal.Torn _ -> " (log tail torn; verified the intact prefix)");
  if !mismatches > 0 then exit 1

let dump =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "dump" ~doc:"Pretty-print a write-ahead log or snapshot.")
    Term.(const dump_cmd $ file)

let verify =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH")
  in
  let port = Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT") in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check every Outcome record in FILE against a serving (typically \
          just-recovered) ntserved: the acknowledged prefix must be \
          reproduced exactly.")
    Term.(const verify_cmd $ file $ socket $ port)

let cmd =
  Cmd.group
    (Cmd.info "ntwal" ~version:Version.string
       ~doc:"Inspect and verify ntserved write-ahead logs.")
    [ dump; verify ]

let () = exit (Cmd.eval cmd)
