(* ntload: a load generator for ntserved.

   Each simulated client connects, learns the servable objects from the
   Welcome response, and then loops: generate a random program over
   those objects, Submit it, poll Status until the transaction commits
   or aborts, record the latency, repeat.  By default the loop is
   closed (one outstanding transaction per client); --open-loop RATE
   switches to Poisson arrivals decoupled from completions, and
   --workload smallbank swaps the random programs for Zipf-contended
   multi-account transactions.  Fault injection:

     --drop-rate P    disconnect (without waiting) right after a
                      Submit with probability P — the server must
                      orphan-abort the transaction and stay serializable;
     --slow-clients N the first N clients dribble their frames a few
                      bytes per tick, exercising partial-frame reads.

   Every Submit carries a client request id ("c<client>-<n>") and the
   echoes are verified, so a captured exchange is attributable end to
   end.  --subscribe opens a telemetry side channel and cross-checks
   the server's windowed latency p99 against the client-side histogram
   (reported as a power-of-two bucket distance).

   Exits nonzero if the server's Quiesced report carries monitor
   alarms, or if any echoed request id mismatches.

   Example:
     ntload --socket /tmp/nt.sock --clients 8 --requests 50 --drop-rate 0.1 *)

open Core
open Cmdliner

(* ----- program generation from the advertised object table ----- *)

type workload = W_random | W_smallbank

(* SmallBank-style contended transactions over the advertised register
   accounts: the same five kind shapes as Gen.smallbank, Zipf-skewed
   account popularity, so a live server sees the contention profile the
   offline checker fuzzes with. *)
let gen_smallbank rng accounts =
  let n = Array.length accounts in
  let acct () = Rng.zipf rng ~n ~theta:Gen.smallbank_profile.Gen.theta in
  let pair () =
    let a = acct () in
    let b0 = acct () in
    (a, if b0 = a then (a + 1) mod n else b0)
  in
  let read i = Program.access accounts.(i) Datatype.Read in
  let write i =
    Program.access accounts.(i) (Datatype.Write (Value.Int (Rng.int rng 16)))
  in
  match Gen.sample_kind rng Gen.smallbank_default with
  | Gen.Balance ->
      let a, b = pair () in
      Program.par [ read a; read b ]
  | Gen.Deposit ->
      let a = acct () in
      Program.seq [ read a; write a ]
  | Gen.Write_check ->
      let a, b = pair () in
      Program.seq [ Program.par [ read a; read b ]; write a ]
  | Gen.Amalgamate ->
      let a, b = pair () in
      Program.seq [ Program.par [ read a; read b ]; write a; write b ]
  | Gen.Payment ->
      let a, b = pair () in
      Program.seq [ read a; write a; read b; write b ]

let gen_program rng objects ~depth ~fanout =
  let leaf () =
    let x, dt = Rng.pick_list rng objects in
    Program.access x (dt.Datatype.sample_ops rng)
  in
  let rec node d =
    if d = 0 then leaf ()
    else
      let n = 1 + Rng.int rng fanout in
      let comb = if Rng.bool rng then Program.Seq else Program.Par in
      Program.Node
        ( comb,
          List.init n (fun _ -> if Rng.int rng 3 = 0 then leaf () else node (d - 1))
        )
  in
  node depth

(* ----- client state machines ----- *)

type phase =
  | Greeting  (* Hello sent, Welcome pending *)
  | Idle  (* about to submit *)
  | Submitting of float * string  (* Submit sent at this time, with req id *)
  | Dropping  (* Submit sent; close as soon as it flushes *)
  | Polling of Txn_id.t * float * string
  | Done

type client = {
  id : int;
  rng : Rng.t;
  slow : bool;
  mutable fd : Unix.file_descr option;
  mutable reader : Wire.Reader.t;
  mutable out : string;
  mutable out_off : int;
  mutable phase : phase;
  mutable remaining : int;
  mutable reqno : int;  (* request-id sequence: "c<id>-<reqno>" *)
  (* open-loop mode: in-flight submissions (rid, submit time, txn once
     Accepted), and the next scheduled Poisson arrival *)
  mutable outstanding : (string * float * Txn_id.t option) list;
  mutable next_arrival : float;
}

type stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable vetoed_seen : int;
  mutable rejected : int;
  mutable dropped : int;
  mutable proto_errors : int;
  mutable req_mismatches : int;  (* echoed request id <> the one sent *)
}

(* ----- the telemetry side channel (--subscribe) ----- *)

type sub = {
  s_fd : Unix.file_descr;
  s_reader : Wire.Reader.t;
  mutable s_out : string;
  mutable s_out_off : int;
  mutable s_frames : Wire.telemetry list;  (* newest first *)
  mutable s_alive : bool;
}

let sub_last_seq s =
  match s.s_frames with [] -> 0 | f :: _ -> f.Wire.seq

(* Merge the windowed latency histograms of the pushed (cut) frames.
   The first frame a subscriber receives is the immediate peek of the
   open interval; its counts reappear in the next cut, so skip it. *)
let sub_merged_latency s =
  let frames = List.rev s.s_frames in
  let cuts = match frames with _ :: rest -> rest | [] -> [] in
  let buckets = Array.make 64 0 in
  let count = ref 0 and sum = ref 0 in
  let minv = ref max_int and maxv = ref 0 in
  List.iter
    (fun (f : Wire.telemetry) ->
      let h = f.Wire.w_latency in
      if h.Wire.h_count > 0 then begin
        count := !count + h.Wire.h_count;
        sum := !sum + h.Wire.h_sum;
        if h.Wire.h_min < !minv then minv := h.Wire.h_min;
        if h.Wire.h_max > !maxv then maxv := h.Wire.h_max;
        List.iter
          (fun (i, n) ->
            if i >= 0 && i < 64 then buckets.(i) <- buckets.(i) + n)
          h.Wire.h_buckets
      end)
    cuts;
  (buckets, !count, !sum, (if !count = 0 then 0 else !minv), !maxv)

(* Merge the per-stage windowed histograms across the cut frames, the
   same skip-the-peek convention as {!sub_merged_latency}.  Returns
   (stage, buckets, count, max) in the server's (canonical) order. *)
let sub_merged_stages s =
  let cuts =
    match List.rev s.s_frames with _ :: rest -> rest | [] -> []
  in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (f : Wire.telemetry) ->
      List.iter
        (fun (name, (h : Wire.hist)) ->
          if h.Wire.h_count > 0 then begin
            let buckets, count, maxv =
              match Hashtbl.find_opt tbl name with
              | Some x -> x
              | None ->
                  let x = (Array.make 64 0, ref 0, ref 0) in
                  Hashtbl.add tbl name x;
                  order := name :: !order;
                  x
            in
            count := !count + h.Wire.h_count;
            if h.Wire.h_max > !maxv then maxv := h.Wire.h_max;
            List.iter
              (fun (i, n) ->
                if i >= 0 && i < 64 then buckets.(i) <- buckets.(i) + n)
              h.Wire.h_buckets
          end)
        f.Wire.stages)
    cuts;
  List.rev_map
    (fun name ->
      let buckets, count, maxv = Hashtbl.find tbl name in
      (name, buckets, !count, !maxv))
    !order

(* Same convention as Metrics.histogram_stats: the value at quantile q
   is the upper bound of the bucket holding the rank-q observation,
   clamped to the exact maximum. *)
let quantile_of_buckets buckets count maxv q =
  if count = 0 then 0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (q *. float_of_int count)))
    in
    let acc = ref 0 and res = ref maxv in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if n > 0 && !acc >= rank then begin
             res := Metrics.bucket_upper i;
             raise Exit
           end)
         buckets
     with Exit -> ());
    Stdlib.min !res maxv
  end

let bucket_index_of v =
  let rec go i = if i >= 63 || Metrics.bucket_upper i >= v then i else go (i + 1) in
  go 0

let connect addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () ->
      Unix.set_nonblock fd;
      fd
  | exception e ->
      (try Unix.close fd with _ -> ());
      raise e

let connect_retry addr =
  let rec go n =
    match connect addr with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 0 ->
        Unix.sleepf 0.1;
        go (n - 1)
  in
  go 50

let send c req = c.out <- c.out ^ Wire.encode_request req

(* A blocking Hello/Ping exchange before the campaign: a dead, deaf,
   or pre-v3 server fails fast here instead of as a timeout storm
   once all the load connections are up. *)
let ping_server addr =
  let fd = connect_retry addr in
  Unix.clear_nonblock fd;
  let write_all s =
    let n = String.length s in
    let rec go off =
      if off < n then go (off + Unix.write_substring fd s off (n - off))
    in
    go 0
  in
  let reader = Wire.Reader.create () in
  let b = Bytes.create 4096 in
  let result = ref None in
  (try
     write_all (Wire.encode_request (Wire.Hello { client = "ntload-ping" }));
     write_all (Wire.encode_request Wire.Ping);
     while !result = None do
       match Wire.Reader.next reader with
       | Ok (Some payload) -> (
           match Wire.decode_response payload with
           | Ok (Wire.Pong p) -> result := Some (p.t_mono, p.live, p.conns)
           | Ok (Wire.Error_msg e) -> failwith e
           | Ok Wire.Goodbye -> failwith "server said goodbye"
           | Ok _ -> ()
           | Error e -> failwith e)
       | Ok None -> (
           match Unix.read fd b 0 (Bytes.length b) with
           | 0 -> failwith "connection closed"
           | n -> Wire.Reader.feed reader (Bytes.sub_string b 0 n))
       | Error e -> failwith e
     done
   with
  | Failure e ->
      Format.eprintf "ntload: ping failed: %s@." e;
      exit 1
  | Unix.Unix_error (e, _, _) ->
      Format.eprintf "ntload: ping failed: %s@." (Unix.error_message e);
      exit 1);
  (try Unix.close fd with _ -> ());
  match !result with Some p -> p | None -> assert false

let open_client addr c =
  c.fd <- Some (connect_retry addr);
  c.reader <- Wire.Reader.create ();
  c.out <- "";
  c.out_off <- 0;
  c.phase <- Greeting;
  send c (Wire.Hello { client = Printf.sprintf "ntload-%d" c.id })

let close_client c =
  (match c.fd with
  | Some fd -> ( try Unix.close fd with _ -> ())
  | None -> ());
  c.fd <- None

let run_load addr ~clients ~requests ~seed ~depth ~fanout ~drop_rate
    ~slow_clients ~shutdown ~subscribe ~json ~kill_after ~kill_pid ~workload
    ~open_rate =
  let master = Rng.create seed in
  let stats =
    {
      submitted = 0;
      committed = 0;
      aborted = 0;
      vetoed_seen = 0;
      rejected = 0;
      dropped = 0;
      proto_errors = 0;
      req_mismatches = 0;
    }
  in
  let metrics = Metrics.create () in
  let latency = Metrics.histogram metrics "ntload.latency_us" in
  let objects = ref [] in
  let cs =
    List.init clients (fun id ->
        {
          id;
          rng = Rng.split master;
          slow = id < slow_clients;
          fd = None;
          reader = Wire.Reader.create ();
          out = "";
          out_off = 0;
          phase = Done;
          remaining = requests;
          reqno = 0;
          outstanding = [];
          next_arrival = 0.0;
        })
  in
  let (_ : float * int * int) = ping_server addr in
  List.iter (open_client addr) cs;
  (* the telemetry side channel: a read-mostly observer alongside the
     load connections, so server windows can be cross-checked against
     the client-side histogram *)
  let sub =
    if not subscribe then None
    else begin
      let fd = connect_retry addr in
      let s =
        {
          s_fd = fd;
          s_reader = Wire.Reader.create ();
          s_out =
            Wire.encode_request (Wire.Hello { client = "ntload-sub" })
            ^ Wire.encode_request Wire.Subscribe;
          s_out_off = 0;
          s_frames = [];
          s_alive = true;
        }
      in
      Some s
    end
  in
  let t_start = Unix.gettimeofday () in
  (* --workload smallbank runs over the advertised registers only; the
     table is fixed after the first Welcome, so force lazily. *)
  let sb_accounts =
    lazy
      (let accts =
         List.filter
           (fun (_, dt) -> dt.Datatype.dt_name = "register")
           !objects
       in
       if List.length accts < 2 then begin
         Format.eprintf
           "ntload: --workload smallbank needs at least 2 register objects \
            (try ntserved --table rw)@.";
         exit 2
       end;
       Array.of_list (List.map fst accts))
  in
  let gen_txn c =
    match workload with
    | W_random -> gen_program c.rng !objects ~depth ~fanout
    | W_smallbank -> gen_smallbank c.rng (Lazy.force sb_accounts)
  in
  let submit c =
    if c.remaining <= 0 then begin
      c.phase <- Done;
      close_client c
    end
    else begin
      let prog = gen_txn c in
      let now = Unix.gettimeofday () in
      let rid = Printf.sprintf "c%d-%d" c.id c.reqno in
      c.reqno <- c.reqno + 1;
      send c
        (Wire.Submit
           { program = Program_io.program_to_string prog; req = Some rid });
      stats.submitted <- stats.submitted + 1;
      c.remaining <- c.remaining - 1;
      if drop_rate > 0.0 && Rng.float c.rng 1.0 < drop_rate then
        c.phase <- Dropping
      else c.phase <- Submitting (now, rid)
    end
  in
  let check_echo rid req =
    if req <> Some rid then stats.req_mismatches <- stats.req_mismatches + 1
  in
  (* --kill-after: crash injection.  After the Nth Accepted ack the
     target pid gets SIGKILL — no drain, no flush, exactly the torn
     state the recovery path must survive.  We stop immediately; the
     acknowledged prefix is what a subsequent `ntwal verify` checks. *)
  let acks = ref 0 in
  let killed = ref false in
  let maybe_kill () =
    match (kill_after, kill_pid) with
    | Some n, Some pid when (not !killed) && !acks >= n ->
        Unix.kill pid Sys.sigkill;
        killed := true;
        Format.printf "ntload: sent SIGKILL to %d after %d acks@." pid !acks
    | _ -> ()
  in
  (* ----- open-loop mode (--open-loop RATE) -----
     Submissions arrive as a Poisson process — exponential inter-arrival
     gaps at RATE/clients per client — decoupled from completions, so a
     client keeps multiple transactions outstanding when the server lags
     the offered load. *)
  let per_client_rate =
    match open_rate with
    | Some r -> r /. float_of_int (Stdlib.max 1 clients)
    | None -> 0.0
  in
  let exp_gap rng = -.log (1.0 -. Rng.float rng 1.0) /. per_client_rate in
  let submit_open c now =
    let prog = gen_txn c in
    let rid = Printf.sprintf "c%d-%d" c.id c.reqno in
    c.reqno <- c.reqno + 1;
    send c
      (Wire.Submit
         { program = Program_io.program_to_string prog; req = Some rid });
    stats.submitted <- stats.submitted + 1;
    c.remaining <- c.remaining - 1;
    c.outstanding <- (rid, now, None) :: c.outstanding
  in
  let settle_open c rid t0 =
    Metrics.observe latency
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
    c.outstanding <- List.filter (fun (r, _, _) -> r <> rid) c.outstanding
  in
  let handle_open c (resp : Wire.response) =
    match (c.phase, resp) with
    | Greeting, Wire.Welcome w ->
        if !objects = [] then
          objects :=
            List.map
              (fun (name, decl) ->
                match Program_io.parse_dtype_decl decl with
                | Ok dt -> (Obj_id.make name, dt)
                | Error e ->
                    Format.eprintf "ntload: bad decl for %s: %s@." name e;
                    exit 2)
              w.objects;
        c.phase <- Idle;
        c.next_arrival <- Unix.gettimeofday () +. exp_gap c.rng
    | _, Wire.Accepted { txn; req } -> (
        incr acks;
        maybe_kill ();
        match req with
        | Some rid when List.exists (fun (r, _, _) -> r = rid) c.outstanding
          ->
            c.outstanding <-
              List.map
                (fun (r, t0, tx) ->
                  if r = rid then (r, t0, Some txn) else (r, t0, tx))
                c.outstanding;
            send c (Wire.Status txn)
        | _ -> stats.req_mismatches <- stats.req_mismatches + 1)
    | _, Wire.Rejected { why; req } ->
        stats.rejected <- stats.rejected + 1;
        Format.eprintf "ntload: submission rejected: %s@." why;
        (match req with
        | Some rid ->
            c.outstanding <-
              List.filter (fun (r, _, _) -> r <> rid) c.outstanding
        | None -> ())
    | _, Wire.State { txn; state = st; req = _ } -> (
        let hit =
          List.find_opt
            (fun (_, _, tx) ->
              match tx with Some t -> Txn_id.equal t txn | None -> false)
            c.outstanding
        in
        match hit with
        | None -> ()
        | Some (rid, t0, _) -> (
            match st with
            | Wire.Committed _ ->
                stats.committed <- stats.committed + 1;
                settle_open c rid t0
            | Wire.Aborted veto ->
                stats.aborted <- stats.aborted + 1;
                if veto <> None then
                  stats.vetoed_seen <- stats.vetoed_seen + 1;
                settle_open c rid t0
            | Wire.Pending | Wire.Running -> send c (Wire.Status txn)))
    | _, Wire.Error_msg why ->
        stats.proto_errors <- stats.proto_errors + 1;
        Format.eprintf "ntload: protocol error: %s@." why;
        c.phase <- Done;
        close_client c
    | _, _ ->
        stats.proto_errors <- stats.proto_errors + 1;
        c.phase <- Done;
        close_client c
  in
  let handle_closed c (resp : Wire.response) =
    match (c.phase, resp) with
    | Greeting, Wire.Welcome w ->
        if !objects = [] then
          objects :=
            List.map
              (fun (name, decl) ->
                match Program_io.parse_dtype_decl decl with
                | Ok dt -> (Obj_id.make name, dt)
                | Error e ->
                    Format.eprintf "ntload: bad decl for %s: %s@." name e;
                    exit 2)
              w.objects;
        c.phase <- Idle;
        submit c
    | Submitting (t0, rid), Wire.Accepted { txn; req } ->
        check_echo rid req;
        incr acks;
        maybe_kill ();
        c.phase <- Polling (txn, t0, rid);
        send c (Wire.Status txn)
    | _, Wire.Rejected { why; req = _ } ->
        stats.rejected <- stats.rejected + 1;
        Format.eprintf "ntload: submission rejected: %s@." why;
        submit c
    | Polling (txn, t0, rid), Wire.State { txn = txn'; state = st; req }
      when Txn_id.equal txn txn' -> (
        match st with
        | Wire.Committed _ ->
            check_echo rid req;
            stats.committed <- stats.committed + 1;
            Metrics.observe latency
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
            submit c
        | Wire.Aborted veto ->
            check_echo rid req;
            stats.aborted <- stats.aborted + 1;
            if veto <> None then stats.vetoed_seen <- stats.vetoed_seen + 1;
            Metrics.observe latency
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
            submit c
        | Wire.Pending | Wire.Running -> send c (Wire.Status txn))
    | _, Wire.Error_msg why ->
        stats.proto_errors <- stats.proto_errors + 1;
        Format.eprintf "ntload: protocol error: %s@." why;
        c.phase <- Done;
        close_client c
    | _, _ ->
        stats.proto_errors <- stats.proto_errors + 1;
        c.phase <- Done;
        close_client c
  in
  let handle c resp =
    match open_rate with
    | Some _ -> handle_open c resp
    | None -> handle_closed c resp
  in
  let buf = Bytes.create 8192 in
  let all_done () = List.for_all (fun c -> c.phase = Done) cs in
  let done_seq = ref None and t_done = ref 0.0 in
  (* With --subscribe, linger after the load completes until one more
     cut frame arrives (it covers the tail interval), bounded by 5s. *)
  let sub_waiting () =
    match sub with
    | None -> false
    | Some s -> (
        s.s_alive
        &&
        match !done_seq with
        | None -> true
        | Some dseq ->
            sub_last_seq s <= dseq
            && Unix.gettimeofday () -. !t_done < 5.0)
  in
  while (not !killed) && ((not (all_done ())) || sub_waiting ()) do
    (if all_done () && !done_seq = None then
       match sub with
       | Some s ->
           done_seq := Some (sub_last_seq s);
           t_done := Unix.gettimeofday ()
       | None -> ());
    (* open-loop arrival pump: fire every Poisson arrival that is due,
       independent of completions; a client is done only once its last
       submission has settled *)
    (match open_rate with
    | Some _ ->
        let now = Unix.gettimeofday () in
        List.iter
          (fun c ->
            match c.phase with
            | Idle ->
                while c.remaining > 0 && now >= c.next_arrival do
                  submit_open c now;
                  c.next_arrival <- c.next_arrival +. exp_gap c.rng
                done;
                if c.remaining <= 0 && c.outstanding = [] then begin
                  c.phase <- Done;
                  close_client c
                end
            | _ -> ())
          cs
    | None -> ());
    let fds c = match c.fd with Some fd -> [ fd ] | None -> [] in
    let sub_fds alive writing =
      match sub with
      | Some s
        when s.s_alive && alive
             && ((not writing) || String.length s.s_out > s.s_out_off) ->
          [ s.s_fd ]
      | _ -> []
    in
    let rfds = List.concat_map fds cs @ sub_fds true false in
    let wfds =
      List.concat_map
        (fun c -> if String.length c.out > c.out_off then fds c else [])
        cs
      @ sub_fds true true
    in
    let r, w, _ =
      try Unix.select rfds wfds [] 0.005
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* telemetry side channel *)
    (match sub with
    | Some s when s.s_alive ->
        (if List.mem s.s_fd w && String.length s.s_out > s.s_out_off then
           let pending = String.length s.s_out - s.s_out_off in
           match Unix.write_substring s.s_fd s.s_out s.s_out_off pending with
           | n ->
               s.s_out_off <- s.s_out_off + n;
               if s.s_out_off >= String.length s.s_out then begin
                 s.s_out <- "";
                 s.s_out_off <- 0
               end
           | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
             ->
               ()
           | exception Unix.Unix_error _ -> s.s_alive <- false);
        if s.s_alive && List.mem s.s_fd r then begin
          match Unix.read s.s_fd buf 0 (Bytes.length buf) with
          | 0 -> s.s_alive <- false
          | n ->
              Wire.Reader.feed s.s_reader (Bytes.sub_string buf 0 n);
              let rec drain () =
                match Wire.Reader.next s.s_reader with
                | Ok None -> ()
                | Ok (Some payload) ->
                    (match Wire.decode_response payload with
                    | Ok (Wire.Telemetry f) -> s.s_frames <- f :: s.s_frames
                    | Ok _ -> ()
                    | Error e ->
                        Format.eprintf "ntload: subscribe: %s@." e;
                        s.s_alive <- false);
                    if s.s_alive then drain ()
                | Error e ->
                    Format.eprintf "ntload: subscribe: %s@." e;
                    s.s_alive <- false
              in
              drain ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error _ -> s.s_alive <- false
        end
    | _ -> ());
    List.iter
      (fun c ->
        match c.fd with
        | Some fd when List.mem fd w && String.length c.out > c.out_off -> (
            let pending = String.length c.out - c.out_off in
            let chunk = if c.slow then min pending 7 else pending in
            match Unix.write_substring fd c.out c.out_off chunk with
            | n ->
                c.out_off <- c.out_off + n;
                if c.out_off >= String.length c.out then begin
                  c.out <- "";
                  c.out_off <- 0;
                  if c.phase = Dropping then begin
                    (* mid-transaction disconnect: the server must
                       orphan the submission we never awaited *)
                    stats.dropped <- stats.dropped + 1;
                    close_client c;
                    if c.remaining <= 0 then c.phase <- Done
                    else open_client addr c
                  end
                end
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
            | exception Unix.Unix_error _ ->
                c.phase <- Done;
                close_client c)
        | _ -> ())
      cs;
    List.iter
      (fun c ->
        match c.fd with
        | Some fd when List.mem fd r -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 ->
                if c.phase <> Done then begin
                  stats.proto_errors <- stats.proto_errors + 1;
                  c.phase <- Done
                end;
                close_client c
            | n ->
                Wire.Reader.feed c.reader (Bytes.sub_string buf 0 n);
                let rec drain () =
                  if c.phase <> Done then
                    match Wire.Reader.next c.reader with
                    | Ok None -> ()
                    | Ok (Some payload) -> (
                        match Wire.decode_response payload with
                        | Ok resp ->
                            handle c resp;
                            drain ()
                        | Error e ->
                            Format.eprintf "ntload: bad frame: %s@." e;
                            stats.proto_errors <- stats.proto_errors + 1;
                            c.phase <- Done;
                            close_client c)
                    | Error e ->
                        Format.eprintf "ntload: framing error: %s@." e;
                        stats.proto_errors <- stats.proto_errors + 1;
                        c.phase <- Done;
                        close_client c
                in
                drain ()
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
            | exception Unix.Unix_error _ ->
                c.phase <- Done;
                close_client c)
        | _ -> ())
      cs
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  (match sub with
  | Some s -> ( try Unix.close s.s_fd with _ -> ())
  | None -> ());
  if !killed then begin
    List.iter close_client cs;
    Format.printf
      "ntload: server killed after %d acknowledged submissions (%.2fs)@."
      !acks elapsed;
    exit 0
  end;
  (* a fresh control connection: drain the server and fetch its tallies *)
  let quiesced = ref None in
  (let fd = connect_retry addr in
   Unix.clear_nonblock fd;
   let write_all s =
     let n = String.length s in
     let rec go off =
       if off < n then go (off + Unix.write_substring fd s off (n - off))
     in
     go 0
   in
   write_all (Wire.encode_request (Wire.Hello { client = "ntload-control" }));
   write_all (Wire.encode_request Wire.Quiesce);
   let reader = Wire.Reader.create () in
   let b = Bytes.create 8192 in
   let stop = ref false in
   while not !stop do
     (match Wire.Reader.next reader with
     | Ok (Some payload) -> (
         match Wire.decode_response payload with
         | Ok (Wire.Quiesced _ as q) ->
             quiesced := Some q;
             if shutdown then write_all (Wire.encode_request Wire.Shutdown)
             else stop := true
         | Ok Wire.Goodbye -> stop := true
         | Ok _ -> ()
         | Error e ->
             Format.eprintf "ntload: control: %s@." e;
             stop := true)
     | Ok None -> (
         match Unix.read fd b 0 (Bytes.length b) with
         | 0 -> stop := true
         | n -> Wire.Reader.feed reader (Bytes.sub_string b 0 n)
         | exception Unix.Unix_error _ -> stop := true)
     | Error e ->
         Format.eprintf "ntload: control: %s@." e;
         stop := true)
   done;
   try Unix.close fd with _ -> ());
  let h = Metrics.histogram_stats latency in
  let alarms, srv_committed, srv_aborted, srv_vetoed =
    match !quiesced with
    | Some (Wire.Quiesced q) -> (q.alarms, q.committed, q.aborted, q.vetoed)
    | _ -> (-1, -1, -1, -1)
  in
  (* per-shard rows ride the Quiesced report when the server runs more
     than one shard; empty on a classic single-engine server *)
  let shard_rows =
    match !quiesced with
    | Some (Wire.Quiesced q) -> q.per_shard
    | _ -> []
  in
  (* server-side window p99 from the subscription, and its distance to
     the client-side p99 in power-of-two buckets *)
  let frames_seen, srv_p99, p99_distance =
    match sub with
    | None -> (0, -1, -1)
    | Some s ->
        let buckets, count, _sum, _min, maxv = sub_merged_latency s in
        if count = 0 then (List.length s.s_frames, -1, -1)
        else
          let p99 = quantile_of_buckets buckets count maxv 0.99 in
          ( List.length s.s_frames,
            p99,
            abs (bucket_index_of p99 - bucket_index_of h.Metrics.p99) )
  in
  (* per-stage server breakdown (p99 of each stage's windowed
     histogram), and the consistency check: the serving-path stages
     between decode and completion partition the submit-to-completion
     interval, so their p99s should not sum past the server's e2e p99
     by more than one power-of-two bucket.  Read and reply lie outside
     that interval (socket time) and are excluded; the check is only
     meaningful on a clean closed loop, so fault-injection campaigns
     skip it. *)
  let stage_stats =
    match sub with
    | None -> []
    | Some s ->
        List.filter_map
          (fun (name, buckets, count, maxv) ->
            if count = 0 then None
            else Some (name, quantile_of_buckets buckets count maxv 0.99, count))
          (sub_merged_stages s)
  in
  let inner_stages = [ "decode"; "validate"; "admit"; "gate"; "execute" ] in
  let stage_sum_p99 =
    List.fold_left
      (fun acc (name, p99, _) ->
        if List.mem name inner_stages then acc + p99 else acc)
      0 stage_stats
  in
  let stage_check_active =
    drop_rate = 0.0 && slow_clients = 0 && open_rate = None && srv_p99 > 0
    && stage_sum_p99 > 0
    && List.exists (fun (name, _, _) -> name = "execute") stage_stats
  in
  let stage_check_failed =
    stage_check_active
    && bucket_index_of stage_sum_p99 > bucket_index_of srv_p99 + 1
  in
  if json then
    print_endline
      (Obs_json.to_string
         (Obs_json.Obj
            ([
               ("clients", Obs_json.Int clients);
               ("requests", Obs_json.Int requests);
               ("submitted", Obs_json.Int stats.submitted);
               ("committed", Obs_json.Int stats.committed);
               ("aborted", Obs_json.Int stats.aborted);
               ("vetoed_seen", Obs_json.Int stats.vetoed_seen);
               ("rejected", Obs_json.Int stats.rejected);
               ("dropped", Obs_json.Int stats.dropped);
               ("proto_errors", Obs_json.Int stats.proto_errors);
               ("req_mismatches", Obs_json.Int stats.req_mismatches);
               ("elapsed_s", Obs_json.Float elapsed);
               ( "throughput_per_s",
                 Obs_json.Float
                   (float_of_int (stats.committed + stats.aborted) /. elapsed)
               );
               ("latency_us_p50", Obs_json.Int h.Metrics.p50);
               ("latency_us_p99", Obs_json.Int h.Metrics.p99);
               ("latency_us_p999", Obs_json.Int h.Metrics.p999);
               ("latency_us_max", Obs_json.Int h.Metrics.max);
               ( "latency_us_buckets",
                 Obs_json.Arr
                   (List.map
                      (fun (i, n) ->
                        Obs_json.Arr [ Obs_json.Int i; Obs_json.Int n ])
                      (Metrics.histogram_buckets latency)) );
               ("server_committed", Obs_json.Int srv_committed);
               ("server_aborted", Obs_json.Int srv_aborted);
               ("server_vetoed", Obs_json.Int srv_vetoed);
               ("server_alarms", Obs_json.Int alarms);
             ]
            @
            (if sub = None then []
             else
               [
                 ("telemetry_frames", Obs_json.Int frames_seen);
                 ("server_latency_us_p99", Obs_json.Int srv_p99);
                 ("p99_bucket_distance", Obs_json.Int p99_distance);
               ])
            @ (if shard_rows = [] then []
               else
                 [
                   ( "server_shards",
                     Obs_json.Arr
                       (List.map
                          (fun (r : Wire.shard_row) ->
                            Obs_json.Obj
                              [
                                ("shard", Obs_json.Int r.r_shard);
                                ("submitted", Obs_json.Int r.r_submitted);
                                ("committed", Obs_json.Int r.r_committed);
                                ("aborted", Obs_json.Int r.r_aborted);
                                ("vetoed", Obs_json.Int r.r_vetoed);
                                ("live", Obs_json.Int r.r_live);
                              ])
                          shard_rows) );
                 ])
            @
            if stage_stats = [] then []
            else
              [
                ( "server_stage_p99_us",
                  Obs_json.Obj
                    (List.map
                       (fun (name, p99, _) -> (name, Obs_json.Int p99))
                       stage_stats) );
                ( "server_stage_count",
                  Obs_json.Obj
                    (List.map
                       (fun (name, _, count) -> (name, Obs_json.Int count))
                       stage_stats) );
                ("stage_sum_p99_us", Obs_json.Int stage_sum_p99);
                ( "stage_sum_check",
                  Obs_json.Str
                    (if not stage_check_active then "skipped"
                     else if stage_check_failed then "fail"
                     else "ok") );
              ])))
  else begin
    Format.printf
      "ntload: %d submitted, %d committed, %d aborted (%d vetoed), %d \
       dropped, %d rejected in %.2fs (%.0f txn/s)@."
      stats.submitted stats.committed stats.aborted stats.vetoed_seen
      stats.dropped stats.rejected elapsed
      (float_of_int (stats.committed + stats.aborted) /. elapsed);
    Format.printf
      "ntload: latency p50 %dus  p99 %dus  p999 %dus  max %dus (%d samples)@."
      h.Metrics.p50 h.Metrics.p99 h.Metrics.p999 h.Metrics.max
      h.Metrics.count;
    (match sub with
    | Some _ when srv_p99 >= 0 ->
        Format.printf
          "ntload: server window p99 %dus (client %dus; bucket distance %d; \
           %d frames)@."
          srv_p99 h.Metrics.p99 p99_distance frames_seen
    | Some _ ->
        Format.printf "ntload: subscription saw %d frames, no latency data@."
          frames_seen
    | None -> ());
    if stage_stats <> [] then
      Format.printf "ntload: server stage p99: %s  (sum %dus, check %s)@."
        (String.concat "  "
           (List.map
              (fun (name, p99, _) -> Printf.sprintf "%s %dus" name p99)
              stage_stats))
        stage_sum_p99
        (if not stage_check_active then "skipped"
         else if stage_check_failed then "FAIL"
         else "ok");
    match !quiesced with
    | Some (Wire.Quiesced q) ->
        Format.printf
          "server: %d committed, %d aborted, %d vetoed, %d alarms@."
          q.committed q.aborted q.vetoed q.alarms;
        List.iter
          (fun (r : Wire.shard_row) ->
            Format.printf
              "server: shard %d: %d pieces, %d committed, %d aborted, %d \
               vetoed, %d live@."
              r.r_shard r.r_submitted r.r_committed r.r_aborted r.r_vetoed
              r.r_live)
          q.per_shard
    | _ -> Format.printf "server: no quiesced report@."
  end;
  if stage_check_failed then begin
    Format.eprintf
      "ntload: stage p99 sum %dus exceeds server e2e p99 %dus by more than \
       one bucket@."
      stage_sum_p99 srv_p99;
    exit 1
  end;
  if stats.proto_errors > 0 then exit 1;
  if stats.req_mismatches > 0 then exit 1;
  if alarms > 0 then exit 1;
  if alarms < 0 then exit 1

let load_cmd socket port clients requests seed depth fanout drop_rate
    slow_clients shutdown subscribe json kill_after kill_pid workload
    open_rate =
  let addr =
    match (socket, port) with
    | Some path, None -> Unix.ADDR_UNIX path
    | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | _ ->
        Format.eprintf "ntload: pass exactly one of --socket or --port@.";
        exit 2
  in
  if kill_after <> None && kill_pid = None then begin
    Format.eprintf "ntload: --kill-after needs --kill-pid@.";
    exit 2
  end;
  (match open_rate with
  | Some r when r <= 0.0 ->
      Format.eprintf "ntload: --open-loop rate must be positive@.";
      exit 2
  | Some _ when drop_rate > 0.0 ->
      (* a dropped connection severs every outstanding submission on it,
         so the open-loop accounting could never settle *)
      Format.eprintf "ntload: --open-loop is incompatible with --drop-rate@.";
      exit 2
  | _ -> ());
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  run_load addr ~clients ~requests ~seed ~depth ~fanout ~drop_rate
    ~slow_clients ~shutdown ~subscribe ~json ~kill_after ~kill_pid ~workload
    ~open_rate

let cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH")
  in
  let port = Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT") in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Client count.")
  in
  let requests =
    Arg.(
      value & opt int 25
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N") in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N" ~doc:"Program depth.")
  in
  let fanout =
    Arg.(value & opt int 3 & info [ "fanout" ] ~docv:"N" ~doc:"Max fanout.")
  in
  let drop_rate =
    Arg.(
      value & opt float 0.0
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Probability of disconnecting right after a Submit.")
  in
  let slow_clients =
    Arg.(
      value & opt int 0
      & info [ "slow-clients" ] ~docv:"N"
          ~doc:"How many clients dribble their frames byte by byte.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send Shutdown once the run completes.")
  in
  let subscribe =
    Arg.(
      value & flag
      & info [ "subscribe" ]
          ~doc:
            "Open a telemetry side channel and cross-check the server's \
             window p99 against the client-side histogram.")
  in
  let json = Arg.(value & flag & info [ "json" ]) in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "Crash injection: SIGKILL the --kill-pid process after the \
             Nth acknowledged submission, then exit.")
  in
  let kill_pid =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-pid" ] ~docv:"PID"
          ~doc:"The server pid --kill-after signals.")
  in
  let workload =
    Arg.(
      value
      & opt (enum [ ("random", W_random); ("smallbank", W_smallbank) ]) W_random
      & info [ "workload" ] ~docv:"W"
          ~doc:
            "Program family: $(b,random) (nested programs over every \
             advertised object) or $(b,smallbank) (Zipf-contended \
             multi-account read-modify-write transactions over the \
             advertised registers).")
  in
  let open_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "open-loop" ] ~docv:"RATE"
          ~doc:
            "Open-loop mode: submissions arrive as a Poisson process at \
             RATE transactions per second (split across clients) with \
             exponential inter-arrival gaps, decoupled from completions — \
             clients keep multiple transactions outstanding when the \
             server lags the offered load.  Incompatible with \
             $(b,--drop-rate).")
  in
  let term =
    Term.(
      const load_cmd $ socket $ port $ clients $ requests $ seed $ depth
      $ fanout $ drop_rate $ slow_clients $ shutdown $ subscribe $ json
      $ kill_after $ kill_pid $ workload $ open_rate)
  in
  Cmd.v
    (Cmd.info "ntload" ~version:Version.string
       ~doc:"Closed-loop load generator for ntserved, with fault injection.")
    term

let () = exit (Cmd.eval cmd)
