(* ntload: a closed-loop load generator for ntserved.

   Each simulated client connects, learns the servable objects from the
   Welcome response, and then loops: generate a random program over
   those objects, Submit it, poll Status until the transaction commits
   or aborts, record the latency, repeat.  Fault injection:

     --drop-rate P    disconnect (without waiting) right after a
                      Submit with probability P — the server must
                      orphan-abort the transaction and stay serializable;
     --slow-clients N the first N clients dribble their frames a few
                      bytes per tick, exercising partial-frame reads.

   Exits nonzero if the server's Quiesced report carries monitor
   alarms.

   Example:
     ntload --socket /tmp/nt.sock --clients 8 --requests 50 --drop-rate 0.1 *)

open Core
open Cmdliner

(* ----- program generation from the advertised object table ----- *)

let gen_program rng objects ~depth ~fanout =
  let leaf () =
    let x, dt = Rng.pick_list rng objects in
    Program.access x (dt.Datatype.sample_ops rng)
  in
  let rec node d =
    if d = 0 then leaf ()
    else
      let n = 1 + Rng.int rng fanout in
      let comb = if Rng.bool rng then Program.Seq else Program.Par in
      Program.Node
        ( comb,
          List.init n (fun _ -> if Rng.int rng 3 = 0 then leaf () else node (d - 1))
        )
  in
  node depth

(* ----- client state machines ----- *)

type phase =
  | Greeting  (* Hello sent, Welcome pending *)
  | Idle  (* about to submit *)
  | Submitting of float  (* Submit sent at this time *)
  | Dropping  (* Submit sent; close as soon as it flushes *)
  | Polling of Txn_id.t * float
  | Done

type client = {
  id : int;
  rng : Rng.t;
  slow : bool;
  mutable fd : Unix.file_descr option;
  mutable reader : Wire.Reader.t;
  mutable out : string;
  mutable out_off : int;
  mutable phase : phase;
  mutable remaining : int;
}

type stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable vetoed_seen : int;
  mutable rejected : int;
  mutable dropped : int;
  mutable proto_errors : int;
}

let connect addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () ->
      Unix.set_nonblock fd;
      fd
  | exception e ->
      (try Unix.close fd with _ -> ());
      raise e

let connect_retry addr =
  let rec go n =
    match connect addr with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 0 ->
        Unix.sleepf 0.1;
        go (n - 1)
  in
  go 50

let send c req = c.out <- c.out ^ Wire.encode_request req

let open_client addr c =
  c.fd <- Some (connect_retry addr);
  c.reader <- Wire.Reader.create ();
  c.out <- "";
  c.out_off <- 0;
  c.phase <- Greeting;
  send c (Wire.Hello { client = Printf.sprintf "ntload-%d" c.id })

let close_client c =
  (match c.fd with
  | Some fd -> ( try Unix.close fd with _ -> ())
  | None -> ());
  c.fd <- None

let run_load addr ~clients ~requests ~seed ~depth ~fanout ~drop_rate
    ~slow_clients ~shutdown ~json =
  let master = Rng.create seed in
  let stats =
    {
      submitted = 0;
      committed = 0;
      aborted = 0;
      vetoed_seen = 0;
      rejected = 0;
      dropped = 0;
      proto_errors = 0;
    }
  in
  let metrics = Metrics.create () in
  let latency = Metrics.histogram metrics "ntload.latency_us" in
  let objects = ref [] in
  let cs =
    List.init clients (fun id ->
        {
          id;
          rng = Rng.split master;
          slow = id < slow_clients;
          fd = None;
          reader = Wire.Reader.create ();
          out = "";
          out_off = 0;
          phase = Done;
          remaining = requests;
        })
  in
  List.iter (open_client addr) cs;
  let t_start = Unix.gettimeofday () in
  let submit c =
    if c.remaining <= 0 then begin
      c.phase <- Done;
      close_client c
    end
    else begin
      let prog = gen_program c.rng !objects ~depth ~fanout in
      let now = Unix.gettimeofday () in
      send c (Wire.Submit { program = Program_io.program_to_string prog });
      stats.submitted <- stats.submitted + 1;
      c.remaining <- c.remaining - 1;
      if drop_rate > 0.0 && Rng.float c.rng 1.0 < drop_rate then
        c.phase <- Dropping
      else c.phase <- Submitting now
    end
  in
  let handle c (resp : Wire.response) =
    match (c.phase, resp) with
    | Greeting, Wire.Welcome w ->
        if !objects = [] then
          objects :=
            List.map
              (fun (name, decl) ->
                match Program_io.parse_dtype_decl decl with
                | Ok dt -> (Obj_id.make name, dt)
                | Error e ->
                    Format.eprintf "ntload: bad decl for %s: %s@." name e;
                    exit 2)
              w.objects;
        c.phase <- Idle;
        submit c
    | Submitting t0, Wire.Accepted txn ->
        c.phase <- Polling (txn, t0);
        send c (Wire.Status txn)
    | _, Wire.Rejected why ->
        stats.rejected <- stats.rejected + 1;
        Format.eprintf "ntload: submission rejected: %s@." why;
        submit c
    | Polling (txn, t0), Wire.State (txn', st) when Txn_id.equal txn txn' -> (
        match st with
        | Wire.Committed _ ->
            stats.committed <- stats.committed + 1;
            Metrics.observe latency
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
            submit c
        | Wire.Aborted veto ->
            stats.aborted <- stats.aborted + 1;
            if veto <> None then stats.vetoed_seen <- stats.vetoed_seen + 1;
            Metrics.observe latency
              (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
            submit c
        | Wire.Pending | Wire.Running -> send c (Wire.Status txn))
    | _, Wire.Error_msg why ->
        stats.proto_errors <- stats.proto_errors + 1;
        Format.eprintf "ntload: protocol error: %s@." why;
        c.phase <- Done;
        close_client c
    | _, _ ->
        stats.proto_errors <- stats.proto_errors + 1;
        c.phase <- Done;
        close_client c
  in
  let buf = Bytes.create 8192 in
  let all_done () = List.for_all (fun c -> c.phase = Done) cs in
  while not (all_done ()) do
    let fds c = match c.fd with Some fd -> [ fd ] | None -> [] in
    let rfds = List.concat_map fds cs in
    let wfds =
      List.concat_map
        (fun c -> if String.length c.out > c.out_off then fds c else [])
        cs
    in
    let r, w, _ =
      try Unix.select rfds wfds [] 0.005
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun c ->
        match c.fd with
        | Some fd when List.mem fd w && String.length c.out > c.out_off -> (
            let pending = String.length c.out - c.out_off in
            let chunk = if c.slow then min pending 7 else pending in
            match Unix.write_substring fd c.out c.out_off chunk with
            | n ->
                c.out_off <- c.out_off + n;
                if c.out_off >= String.length c.out then begin
                  c.out <- "";
                  c.out_off <- 0;
                  if c.phase = Dropping then begin
                    (* mid-transaction disconnect: the server must
                       orphan the submission we never awaited *)
                    stats.dropped <- stats.dropped + 1;
                    close_client c;
                    if c.remaining <= 0 then c.phase <- Done
                    else open_client addr c
                  end
                end
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
            | exception Unix.Unix_error _ ->
                c.phase <- Done;
                close_client c)
        | _ -> ())
      cs;
    List.iter
      (fun c ->
        match c.fd with
        | Some fd when List.mem fd r -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 ->
                if c.phase <> Done then begin
                  stats.proto_errors <- stats.proto_errors + 1;
                  c.phase <- Done
                end;
                close_client c
            | n ->
                Wire.Reader.feed c.reader (Bytes.sub_string buf 0 n);
                let rec drain () =
                  if c.phase <> Done then
                    match Wire.Reader.next c.reader with
                    | Ok None -> ()
                    | Ok (Some payload) -> (
                        match Wire.decode_response payload with
                        | Ok resp ->
                            handle c resp;
                            drain ()
                        | Error e ->
                            Format.eprintf "ntload: bad frame: %s@." e;
                            stats.proto_errors <- stats.proto_errors + 1;
                            c.phase <- Done;
                            close_client c)
                    | Error e ->
                        Format.eprintf "ntload: framing error: %s@." e;
                        stats.proto_errors <- stats.proto_errors + 1;
                        c.phase <- Done;
                        close_client c
                in
                drain ()
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                ()
            | exception Unix.Unix_error _ ->
                c.phase <- Done;
                close_client c)
        | _ -> ())
      cs
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  (* a fresh control connection: drain the server and fetch its tallies *)
  let quiesced = ref None in
  (let fd = connect_retry addr in
   Unix.clear_nonblock fd;
   let write_all s =
     let n = String.length s in
     let rec go off =
       if off < n then go (off + Unix.write_substring fd s off (n - off))
     in
     go 0
   in
   write_all (Wire.encode_request (Wire.Hello { client = "ntload-control" }));
   write_all (Wire.encode_request Wire.Quiesce);
   let reader = Wire.Reader.create () in
   let b = Bytes.create 8192 in
   let stop = ref false in
   while not !stop do
     (match Wire.Reader.next reader with
     | Ok (Some payload) -> (
         match Wire.decode_response payload with
         | Ok (Wire.Quiesced _ as q) ->
             quiesced := Some q;
             if shutdown then write_all (Wire.encode_request Wire.Shutdown)
             else stop := true
         | Ok Wire.Goodbye -> stop := true
         | Ok _ -> ()
         | Error e ->
             Format.eprintf "ntload: control: %s@." e;
             stop := true)
     | Ok None -> (
         match Unix.read fd b 0 (Bytes.length b) with
         | 0 -> stop := true
         | n -> Wire.Reader.feed reader (Bytes.sub_string b 0 n)
         | exception Unix.Unix_error _ -> stop := true)
     | Error e ->
         Format.eprintf "ntload: control: %s@." e;
         stop := true)
   done;
   try Unix.close fd with _ -> ());
  let h = Metrics.histogram_stats latency in
  let alarms, srv_committed, srv_aborted, srv_vetoed =
    match !quiesced with
    | Some (Wire.Quiesced q) -> (q.alarms, q.committed, q.aborted, q.vetoed)
    | _ -> (-1, -1, -1, -1)
  in
  if json then
    print_endline
      (Obs_json.to_string
         (Obs_json.Obj
            [
              ("clients", Obs_json.Int clients);
              ("requests", Obs_json.Int requests);
              ("submitted", Obs_json.Int stats.submitted);
              ("committed", Obs_json.Int stats.committed);
              ("aborted", Obs_json.Int stats.aborted);
              ("vetoed_seen", Obs_json.Int stats.vetoed_seen);
              ("rejected", Obs_json.Int stats.rejected);
              ("dropped", Obs_json.Int stats.dropped);
              ("proto_errors", Obs_json.Int stats.proto_errors);
              ("elapsed_s", Obs_json.Float elapsed);
              ( "throughput_per_s",
                Obs_json.Float
                  (float_of_int (stats.committed + stats.aborted) /. elapsed) );
              ("latency_us_p50", Obs_json.Int h.Metrics.p50);
              ("latency_us_p99", Obs_json.Int h.Metrics.p99);
              ("latency_us_max", Obs_json.Int h.Metrics.max);
              ("server_committed", Obs_json.Int srv_committed);
              ("server_aborted", Obs_json.Int srv_aborted);
              ("server_vetoed", Obs_json.Int srv_vetoed);
              ("server_alarms", Obs_json.Int alarms);
            ]))
  else begin
    Format.printf
      "ntload: %d submitted, %d committed, %d aborted (%d vetoed), %d \
       dropped, %d rejected in %.2fs (%.0f txn/s)@."
      stats.submitted stats.committed stats.aborted stats.vetoed_seen
      stats.dropped stats.rejected elapsed
      (float_of_int (stats.committed + stats.aborted) /. elapsed);
    Format.printf "ntload: latency p50 %dus  p99 %dus  max %dus (%d samples)@."
      h.Metrics.p50 h.Metrics.p99 h.Metrics.max h.Metrics.count;
    match !quiesced with
    | Some (Wire.Quiesced q) ->
        Format.printf
          "server: %d committed, %d aborted, %d vetoed, %d alarms@."
          q.committed q.aborted q.vetoed q.alarms
    | _ -> Format.printf "server: no quiesced report@."
  end;
  if stats.proto_errors > 0 then exit 1;
  if alarms > 0 then exit 1;
  if alarms < 0 then exit 1

let load_cmd socket port clients requests seed depth fanout drop_rate
    slow_clients shutdown json =
  let addr =
    match (socket, port) with
    | Some path, None -> Unix.ADDR_UNIX path
    | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | _ ->
        Format.eprintf "ntload: pass exactly one of --socket or --port@.";
        exit 2
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  run_load addr ~clients ~requests ~seed ~depth ~fanout ~drop_rate
    ~slow_clients ~shutdown ~json

let cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH")
  in
  let port = Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT") in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Client count.")
  in
  let requests =
    Arg.(
      value & opt int 25
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N") in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N" ~doc:"Program depth.")
  in
  let fanout =
    Arg.(value & opt int 3 & info [ "fanout" ] ~docv:"N" ~doc:"Max fanout.")
  in
  let drop_rate =
    Arg.(
      value & opt float 0.0
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Probability of disconnecting right after a Submit.")
  in
  let slow_clients =
    Arg.(
      value & opt int 0
      & info [ "slow-clients" ] ~docv:"N"
          ~doc:"How many clients dribble their frames byte by byte.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send Shutdown once the run completes.")
  in
  let json = Arg.(value & flag & info [ "json" ]) in
  let term =
    Term.(
      const load_cmd $ socket $ port $ clients $ requests $ seed $ depth
      $ fanout $ drop_rate $ slow_clients $ shutdown $ json)
  in
  Cmd.v
    (Cmd.info "ntload" ~version:Version.string
       ~doc:"Closed-loop load generator for ntserved, with fault injection.")
    term

let () = exit (Cmd.eval cmd)
