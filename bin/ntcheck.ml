(* ntcheck: property-based differential checking of every
   concurrency-control backend against the paper's oracles.

   Examples:
     ntcheck --runs 200 --seed 7                 # sweep the verified backends
     ntcheck --backend commlock --runs 1000
     ntcheck --backend no-control --shrink       # watch it fail, minimized
     ntcheck --replay failure.bundle             # re-run a saved counterexample *)

open Core
open Cmdliner

type target = All | One of Check.backend

let target_conv =
  let parse s =
    if s = "all" then Ok All
    else
      match Check.backend_of_name s with
      | Some b -> Ok (One b)
      | None -> Error (`Msg (Check.unknown_backend_message s))
  in
  let print f = function
    | All -> Format.pp_print_string f "all"
    | One b -> Format.pp_print_string f (Check.backend_name b)
  in
  Arg.conv (parse, print)

let grammar_conv =
  Arg.enum
    [
      ("rw", Check.Rw); ("counters", Check.Counters);
      ("mixed", Check.Mixed); ("weighted", Check.Weighted);
      ("smallbank", Check.Smallbank);
    ]

let shape_conv =
  Arg.enum
    [
      ("default", Check.Default); ("lock-heavy", Check.Lock_heavy);
      ("deep-nesting", Check.Deep_nesting); ("abort-storm", Check.Abort_storm);
    ]

type obs_format = Obs_jsonl | Obs_chrome | Obs_table

let obs_format_conv =
  Arg.enum
    [ ("jsonl", Obs_jsonl); ("chrome", Obs_chrome); ("table", Obs_table) ]

let setup_obs obs_format obs_out =
  match (obs_format, obs_out) with
  | None, None -> (Obs.null, fun () -> ())
  | _ ->
      let fmt = Option.value ~default:Obs_table obs_format in
      let sink =
        match (fmt, obs_out) with
        | Obs_jsonl, Some path -> Obs_sink.jsonl_file path
        | Obs_chrome, Some path -> Chrome_trace.sink_file path
        | (Obs_jsonl | Obs_chrome), None ->
            Format.eprintf
              "--obs-format jsonl/chrome requires --obs-out FILE@.";
            exit 2
        | Obs_table, _ -> Obs_sink.null
      in
      let obs = Obs.create ~sink () in
      let finish () =
        Obs.close obs;
        match (fmt, obs_out) with
        | Obs_table, Some path ->
            let oc = open_out path in
            let f = Format.formatter_of_out_channel oc in
            Format.fprintf f "%a@." Metrics.pp (Obs.metrics obs);
            close_out oc;
            Format.printf "metrics written to %s@." path
        | Obs_table, None ->
            Format.printf "@.oracle metrics:@.%a@." Metrics.pp
              (Obs.metrics obs)
        | Obs_jsonl, Some path ->
            Format.printf "telemetry streamed to %s (jsonl)@." path
        | Obs_chrome, Some path ->
            Format.printf "trace written to %s (chrome://tracing)@." path
        | _, None -> ()
      in
      (obs, finish)

(* The schema a scenario's trace is over — physical for replication. *)
let trace_schema backend (sc : Check.scenario) =
  match backend with
  | Check.Replication ->
      let plan =
        Replication.replicate Check.replication_config
          ~objects:(List.map fst sc.Check.objects)
          sc.Check.forest
      in
      (plan.Replication.physical_schema, plan.Replication.physical_forest)
  | _ -> (Check.schema_of_scenario sc, sc.Check.forest)

let write_artifacts ?crash_seed prefix backend (sc : Check.scenario) failure
    trace =
  let bundle = prefix ^ ".bundle" in
  Bundle.save ~failure ?crash_seed bundle backend sc;
  Trace_io.save (prefix ^ ".trace") trace;
  let schema, _ = trace_schema backend sc in
  let monitor = Monitor.create schema in
  ignore (Monitor.feed_trace monitor trace);
  let oc = open_out (prefix ^ ".dot") in
  output_string oc (Monitor.dot monitor);
  close_out oc;
  Format.printf "replay bundle: %s (plus %s.trace, %s.dot)@." bundle prefix
    prefix

(* [crash = true] swaps the subject from one run of the scenario to
   the full crash-injection sweep over its recorded serve: shrinking
   uses the sweep as the failing predicate and bundles carry the
   serving seed so the counterexample replays bit-for-bit. *)
let report_failure ~crash backend sc failure trace ~shrink ~bundle_prefix =
  Format.printf "  failure: %a@." Check.pp_failure failure;
  let minimize =
    if crash then fun b sc -> Shrink.minimize_crash b sc
    else fun b sc -> Shrink.minimize b sc
  in
  let sc, failure, trace =
    if not shrink then (sc, failure, trace)
    else
      match minimize backend sc with
      | None -> (sc, failure, trace)
      | Some m ->
          Format.printf
            "  shrunk to %d accesses in %d attempts (deterministic=%b): %a@."
            (Shrink.n_accesses m.Shrink.scenario.Check.forest)
            m.Shrink.attempts m.Shrink.deterministic Check.pp_failure
            m.Shrink.failure;
          (m.Shrink.scenario, m.Shrink.failure, m.Shrink.trace)
  in
  (match bundle_prefix with
  | Some prefix ->
      let crash_seed = if crash then Some (Check.crash_seed_of sc) else None in
      write_artifacts ?crash_seed prefix backend sc failure trace
  | None -> ());
  ()

let run_campaign obs backend ~seed ~runs ~grammar ~shape ~max_steps
    ~keep_going ~shrink ~bundle_prefix ~crash =
  let campaign =
    if crash then fun b ~seed ~runs ->
      Check.crash_campaign ~obs ?max_steps ?grammar ?shape
        ~stop_at_first:(not keep_going) b ~seed ~runs
    else fun b ~seed ~runs ->
      Check.campaign ~obs ?max_steps ?grammar ?shape
        ~stop_at_first:(not keep_going) b ~seed ~runs
  in
  let r = campaign backend ~seed ~runs in
  Format.printf "%-12s %4d runs  %4d passed  %2d truncated  %d failed%s@."
    (Check.backend_name backend)
    r.Check.runs r.Check.passed r.Check.truncations
    (List.length r.Check.failures)
    (if crash then "  (crash-restart sweep)" else "");
  List.iter
    (fun (i, sc, failure) ->
      Format.printf "  run %d (sched-seed %d):@." i sc.Check.sched_seed;
      let o =
        if crash then Check.crash_outcome (Check.crash ?max_steps backend sc)
        else Check.run_scenario ?max_steps backend sc
      in
      report_failure ~crash backend sc failure o.Check.trace ~shrink
        ~bundle_prefix)
    r.Check.failures;
  r.Check.failures = []

let replay file ~shrink ~bundle_prefix ~max_steps ~crash_restart =
  match Bundle.load file with
  | Error e ->
      Format.eprintf "ntcheck: %s@." e;
      2
  | Ok b ->
      let backend = b.Bundle.backend in
      (* A bundle written by a --crash-restart campaign replays under
         the crash sweep automatically: the recorded serving seed is
         the marker. *)
      let crash = crash_restart || b.Bundle.crash_seed <> None in
      Format.printf "replaying %s under %s (sched-seed %d%s)@." file
        (Check.backend_name backend)
        b.Bundle.scenario.Check.sched_seed
        (if crash then ", crash-restart sweep" else "");
      (match b.Bundle.failure_tag with
      | Some tag -> Format.printf "recorded failure: %s@." tag
      | None -> ());
      let o =
        if crash then
          Check.crash_outcome
            (Check.crash ?max_steps ?seed:b.Bundle.crash_seed backend
               b.Bundle.scenario)
        else Check.run_scenario ?max_steps backend b.Bundle.scenario
      in
      if o.Check.truncated then Format.printf "run truncated@.";
      (match o.Check.failure with
      | None ->
          Format.printf "all oracles passed@.";
          0
      | Some failure ->
          report_failure ~crash backend b.Bundle.scenario failure
            o.Check.trace ~shrink ~bundle_prefix;
          1)

let main target seed runs grammar shape max_steps keep_going shrink
    bundle_prefix replay_file crash_restart obs_format obs_out =
  match replay_file with
  | Some file -> replay file ~shrink ~bundle_prefix ~max_steps ~crash_restart
  | None -> (
    match (target, grammar) with
    | One b, Some g when not (Check.grammar_allowed b g) ->
        (* Refuse the pair up front: letting the campaign run would
           silently coerce the pinned grammar to rw. *)
        Format.eprintf "ntcheck: %s@." (Check.grammar_conflict_message b g);
        2
    | _ ->
      let backends =
        match target with All -> Check.correct_backends | One b -> [ b ]
      in
      let obs, finish = setup_obs obs_format obs_out in
      let ok =
        List.fold_left
          (fun ok backend ->
            run_campaign obs backend ~seed ~runs ~grammar ~shape ~max_steps
              ~keep_going ~shrink ~bundle_prefix ~crash:crash_restart
            && ok)
          true backends
      in
      finish ();
      if ok then 0 else 1)

let cmd =
  let target =
    Arg.(
      value
      & opt target_conv All
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            (Printf.sprintf
               "Backend to check: %s, or $(b,all) (the five verified \
                backends)."
               (String.concat ", " Check.backend_names)))
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Master seed of the campaign.")
  in
  let runs =
    Arg.(
      value & opt int 100
      & info [ "runs" ] ~docv:"N" ~doc:"Scenarios per backend.")
  in
  let grammar =
    Arg.(
      value
      & opt (some grammar_conv) None
      & info [ "grammar" ] ~docv:"G"
          ~doc:
            "Pin the action grammar: rw, counters, mixed, weighted, \
             smallbank (default: drawn per run).")
  in
  let shape =
    Arg.(
      value
      & opt (some shape_conv) None
      & info [ "shape" ] ~docv:"S"
          ~doc:
            "Pin the workload shape: default, lock-heavy, deep-nesting, \
             abort-storm (default: drawn per run).")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:"Step budget per run before truncation (default 200000).")
  in
  let keep_going =
    Arg.(
      value & flag
      & info [ "keep-going" ]
          ~doc:"Do not stop a campaign at its first failure.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize each failure to a minimal counterexample.")
  in
  let bundle_prefix =
    Arg.(
      value
      & opt (some string) (Some "ntcheck-failure")
      & info [ "bundle" ] ~docv:"PREFIX"
          ~doc:
            "Write PREFIX.bundle/.trace/.dot on failure (default \
             ntcheck-failure; pass an empty value to a different PREFIX to \
             relocate).")
  in
  let replay_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-run a saved replay bundle instead of a campaign.")
  in
  let crash_restart =
    Arg.(
      value & flag
      & info [ "crash-restart" ]
          ~doc:
            "Durability sweep: record each scenario's serve into a \
             write-ahead log, simulate a kill -9 at every record boundary \
             (plus torn and bit-flipped variants), recover each damaged \
             image and re-judge the resumed run under all four oracles.  \
             Failures shrink under the same sweep and save bundles \
             carrying the serving seed.")
  in
  let obs_format =
    Arg.(
      value
      & opt (some obs_format_conv) None
      & info [ "obs-format" ] ~docv:"FMT" ~doc:"jsonl, chrome or table.")
  in
  let obs_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE" ~doc:"Telemetry output file.")
  in
  let term =
    Term.(
      const main $ target $ seed $ runs $ grammar $ shape $ max_steps
      $ keep_going $ shrink $ bundle_prefix $ replay_file $ crash_restart
      $ obs_format $ obs_out)
  in
  Cmd.v
    (Cmd.info "ntcheck" ~version:Version.string
       ~doc:
         "Property-based differential checking of nested-transaction \
          backends")
    term

let () = exit (Cmd.eval' cmd)
