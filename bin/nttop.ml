(* nttop: a terminal dashboard over ntserved's Telemetry stream.

   Connects, subscribes, and repaints a panel per pushed frame: the
   window's rates and latency percentiles, engine occupancy, cumulative
   totals, serialization-graph size and the hottest objects, plus the
   windowed latency histogram as a bar chart.

     nttop --socket /tmp/nt.sock
     nttop --port 7477 --frames 10
     nttop --socket /tmp/nt.sock --once     # one frame, no clearing: CI-able
     nttop --socket /tmp/nt.sock --json     # one JSON line per frame

   Exits nonzero if the stream dies before the requested frames, or if
   frame sequence numbers ever fail to increase. *)

open Core
open Cmdliner

let connect addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> fd
  | exception e ->
      (try Unix.close fd with _ -> ());
      raise e

let connect_retry addr =
  let rec go n =
    match connect addr with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when n > 0 ->
        Unix.sleepf 0.1;
        go (n - 1)
  in
  go 50

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* ----- rendering ----- *)

let bar width n maxn =
  let w =
    if maxn <= 0 then 0
    else Stdlib.max 1 (n * width / Stdlib.max 1 maxn)
  in
  String.make (Stdlib.min w width) '#'

let render ~clear (f : Wire.telemetry) =
  if clear then print_string "\027[2J\027[H";
  let p = Format.printf in
  p "ntserved  seq %d  t=%.1fs  interval %.1fs@." f.Wire.seq f.Wire.t_mono
    f.Wire.interval_s;
  p "window  : %d req  %d submitted  %d committed  %d aborted  (%d vetoed, \
     %d orphans)  %d alarms@."
    f.Wire.w_requests f.Wire.w_submitted f.Wire.w_committed f.Wire.w_aborted
    f.Wire.w_vetoed f.Wire.w_orphans f.Wire.w_alarms;
  let rate n = float_of_int n /. f.Wire.interval_s in
  p "rates   : %.1f req/s  %.1f commit/s@."
    (rate f.Wire.w_requests)
    (rate f.Wire.w_committed);
  let h = f.Wire.w_latency in
  p "latency : p50 %dus  p99 %dus  p999 %dus  max %dus  (%d samples)@."
    h.Wire.h_p50 h.Wire.h_p99 h.Wire.h_p999 h.Wire.h_max h.Wire.h_count;
  p "engine  : %d live  %d doomed  %d conns  %d subscribers@." f.Wire.o_live
    f.Wire.o_doomed f.Wire.o_conns f.Wire.o_subscribers;
  p "totals  : %d submitted  %d committed  %d aborted  %d vetoed  %d alarms@."
    f.Wire.c_submitted f.Wire.c_committed f.Wire.c_aborted f.Wire.c_vetoed
    f.Wire.c_alarms;
  p "sg      : %d nodes  %d edges  %d reorders@." f.Wire.sg_nodes
    f.Wire.sg_edges f.Wire.sg_reorders;
  if f.Wire.per_shard <> [] then begin
    p "shards  :@.";
    let maxc =
      List.fold_left
        (fun m (r : Wire.shard_row) -> Stdlib.max m r.Wire.r_committed)
        0 f.Wire.per_shard
    in
    List.iter
      (fun (r : Wire.shard_row) ->
        p "  #%d  %6d pieces  %6d committed  %4d aborted  %4d vetoed  %4d \
           live  %s@."
          r.Wire.r_shard r.Wire.r_submitted r.Wire.r_committed
          r.Wire.r_aborted r.Wire.r_vetoed r.Wire.r_live
          (bar 16 r.Wire.r_committed maxc))
      f.Wire.per_shard
  end;
  let g = f.Wire.gc_pause in
  if g.Wire.h_count > 0 || f.Wire.gc_pct > 0. then
    p "gc      : %d pauses  p50 %dus  p99 %dus  max %dus  %.2f%% of wall@."
      g.Wire.h_count g.Wire.h_p50 g.Wire.h_p99 g.Wire.h_max f.Wire.gc_pct;
  if f.Wire.stages <> [] then begin
    p "stages (window, exclusive us):@.";
    let maxp99 =
      List.fold_left
        (fun m (_, (h : Wire.hist)) -> Stdlib.max m h.Wire.h_p99)
        0 f.Wire.stages
    in
    List.iter
      (fun (s, (h : Wire.hist)) ->
        p "  %-8s p50 %8d  p99 %8d  max %8d  %-16s %d@." s h.Wire.h_p50
          h.Wire.h_p99 h.Wire.h_max
          (bar 16 h.Wire.h_p99 maxp99)
          h.Wire.h_count)
      f.Wire.stages
  end;
  (match f.Wire.hot with
  | [] -> p "hot     : -@."
  | hot ->
      p "hot     : %s@."
        (String.concat "  "
           (List.map (fun (x, n) -> Printf.sprintf "%s:%d" x n) hot)));
  if h.Wire.h_buckets <> [] then begin
    p "latency histogram (window):@.";
    let maxn =
      List.fold_left (fun m (_, n) -> Stdlib.max m n) 0 h.Wire.h_buckets
    in
    List.iter
      (fun (i, n) ->
        p "  [%7d,%7d] %-24s %d@." (Metrics.bucket_lower i)
          (Metrics.bucket_upper i) (bar 24 n maxn) n)
      h.Wire.h_buckets
  end;
  Format.print_flush ()

(* ----- the loop ----- *)

let run addr ~frames ~once ~json =
  let want = if once then 1 else frames in
  let fd = connect_retry addr in
  write_all fd (Wire.encode_request (Wire.Hello { client = "nttop" }));
  write_all fd (Wire.encode_request Wire.Subscribe);
  let reader = Wire.Reader.create () in
  let buf = Bytes.create 8192 in
  let seen = ref 0 in
  let last_seq = ref 0 in
  let bad = ref false in
  let stop = ref false in
  while (not !stop) && ((want <= 0 && not once) || !seen < want) do
    match Wire.Reader.next reader with
    | Ok (Some payload) -> (
        match Wire.decode_response payload with
        | Ok (Wire.Telemetry f) ->
            if f.Wire.seq <= !last_seq then begin
              Format.eprintf "nttop: sequence went backwards (%d after %d)@."
                f.Wire.seq !last_seq;
              bad := true;
              stop := true
            end
            else begin
              last_seq := f.Wire.seq;
              incr seen;
              if json then begin
                print_string
                  (Obs_json.to_string (Wire.response_to_json (Wire.Telemetry f)));
                print_newline ();
                flush stdout
              end
              else render ~clear:(not once) f
            end
        | Ok Wire.Goodbye -> stop := true
        | Ok _ -> ()
        | Error e ->
            Format.eprintf "nttop: %s@." e;
            bad := true;
            stop := true)
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> stop := true
        | n -> Wire.Reader.feed reader (Bytes.sub_string buf 0 n)
        | exception Unix.Unix_error _ -> stop := true)
    | Error e ->
        Format.eprintf "nttop: framing error: %s@." e;
        bad := true;
        stop := true
  done;
  (try Unix.close fd with _ -> ());
  if !bad then exit 1;
  if want > 0 && !seen < want then begin
    Format.eprintf "nttop: stream ended after %d/%d frames@." !seen want;
    exit 1
  end

let top_cmd socket port frames once json =
  let addr =
    match (socket, port) with
    | Some path, None -> Unix.ADDR_UNIX path
    | None, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | _ ->
        Format.eprintf "nttop: pass exactly one of --socket or --port@.";
        exit 2
  in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  run addr ~frames ~once ~json

let cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH")
  in
  let port = Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT") in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:"Exit after N frames (0: run until the stream ends).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Render the first frame without clearing the screen, then \
             exit — for CI and snapshots.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print each Telemetry frame as one JSON line (the wire \
             rendering, stages and gc included) instead of the panel — \
             for piping into jq or archiving.")
  in
  let term = Term.(const top_cmd $ socket $ port $ frames $ once $ json) in
  Cmd.v
    (Cmd.info "nttop" ~version:Version.string
       ~doc:"Terminal dashboard over ntserved's Telemetry stream.")
    term

let () = exit (Cmd.eval cmd)
