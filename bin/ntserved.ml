(* ntserved: a nested-transaction server.

   Clients speak the length-prefixed JSON protocol of [Core.Wire] over a
   Unix-domain socket (--socket) or a loopback TCP port (--port):
   programs arrive as text, run open-loop on the [Core.Engine] under the
   chosen backend, and commits are gated by the online serialization-
   graph admission controller (disable with --no-admission to watch the
   monitor catch what the gate would have refused).

   Examples:
     ntserved --socket /tmp/nt.sock --backend undo
     ntserved --port 7477 --backend moss --obs-format jsonl --obs-out t.jsonl
     ntserved --socket /tmp/nt.sock --backend replication --objects 3

   Single-threaded: one select loop interleaves accepts, reads, writes
   and engine steps, so served executions are sequential interleavings —
   exactly the generic-system behaviors the paper's theorems cover. *)

open Core
open Cmdliner

(* ----- object tables ----- *)

type table = T_rw | T_mixed

let table_conv = Arg.enum [ ("rw", T_rw); ("mixed", T_mixed) ]

let build_objects table n =
  match table with
  | T_rw ->
      List.init n (fun i -> (Obj_id.indexed "r" i, Register.make ()))
  | T_mixed ->
      List.init n (fun i ->
          let x = Obj_id.indexed "x" i in
          match i mod 5 with
          | 0 -> (x, Register.make ())
          | 1 -> (x, Counter.make ())
          | 2 -> (x, Bank_account.make ~init:10 ())
          | 3 -> (x, Rset.make ())
          | _ -> (x, Fifo_queue.make ()))

(* ----- connections ----- *)

type conn = {
  fd : Unix.file_descr;
  id : int;  (* stable connection id (the pid row in Chrome dumps) *)
  reader : Wire.Reader.t;
  mutable out : string;
  mutable out_off : int;
  mutable sent : int;  (* bytes flushed and discarded from [out] *)
  mutable greeted : bool;
  mutable client_name : string;
  mutable subscribed : bool;  (* push Telemetry frames here *)
  mutable live : Txn_id.t list;  (* this client's incomplete submissions *)
  mutable wants_quiesce : bool;
  mutable closing : bool;  (* close once the out buffer drains *)
  mutable last_rx : float;
  mutable rx_start : float option;  (* when the pending frame began *)
  mutable replies : (string option * string option * float * int) list;
      (* Accepted answers awaiting flush: req, txn, buffered-at,
         absolute out-stream offset of the frame's last byte — the
         reply stage closes when [sent + out_off] passes it. *)
}

(* Submission provenance, kept for the life of the server: the client's
   request id is echoed in every State answer and in audit entries, and
   t_submit anchors the submit-to-completion latency. *)
type txn_rec = {
  req : string option;
  client : string;
  t_submit : float;
  conn_id : int;
}

(* ----- durability state ----- *)

(* The live write-ahead log: a writer over the current log generation,
   the fd it appends to (swapped at rotation — the sink reads it
   through [fd]), and the cumulative compacted replay closure the next
   snapshot will persist. *)
type wal_state = {
  wal_path : string;
  snapshot_every : int;  (* appended records per snapshot; 0 = never *)
  wal_fd : Unix.file_descr ref;
  mk_writer : fresh:bool -> base_seq:int -> Wal.Writer.t;
  mutable w : Wal.Writer.t;
  mutable last_step_calls : int;  (* engine step_calls at the last cut *)
  closure : Wal.Closure.t;  (* incrementally compacted replay closure *)
  mutable snap_mark : int;  (* Writer.appended at the last snapshot *)
  wal_meta : Wal.record;
}

(* A recovery in flight: chunks of the logged call sequence are applied
   between select turns so Ping stays responsive.  Each phase pairs an
   event list with the validation that must pass once its events have
   been applied (snapshot: SG and counter agreement; log tail: the
   outcome prefix-closure check). *)
type recovery = {
  mutable phases :
    (Engine.replay_event list * (unit -> (unit, string) result)) list;
  total : int;  (* sum of event weights across all phases *)
  mutable replayed : int;
  rec_torn : bool;  (* the log had a damaged tail (now truncated) *)
}

type server = {
  eng : Engine.t;
  backend : Check.backend;
  objects : (Obj_id.t * Datatype.t) list;  (* logical (advertised) table *)
  replicated : bool;
  mutable logical_rev : Program.t list;  (* replication: forest so far *)
  conns : (Unix.file_descr, conn) Hashtbl.t;
  metrics : Metrics.t;
  hub : Telemetry.Hub.t;
  audit : Telemetry.Audit.t option;
  txns : txn_rec Txn_id.Tbl.t;
  t0 : float;  (* server start; frame times are seconds since this *)
  telemetry_interval : float;  (* 0 = no periodic frames *)
  slow_us : int;  (* audit threshold, µs *)
  prom : string option;  (* prometheus text export path *)
  recorder : Stage.Recorder.t option;  (* the flight recorder *)
  flight_dir : string;
  gcmon : Gcmon.t option;
  verbose : bool;
  mutable gc_ctx : string option * string option * int;
      (* last request context touched (req, txn, conn id): what a GC
         pause drained between loop turns is attributed to *)
  mutable dump_seq : int;
  mutable last_dump : float;  (* anomaly-dump throttle *)
  mutable pending_dump : string option;
      (* anomaly seen mid-turn; dumped at the bottom of the loop, once
         the flagged request's reply span has flushed *)
  mutable dump_hold : int;  (* turns the pending dump has waited *)
  mutable draining : bool;  (* no new conns/submissions *)
  mutable status : Wire.server_status;
  mutable wal : wal_state option;
  mutable recovery : recovery option;
}

let server_status srv = srv.status

let mono srv = Unix.gettimeofday () -. srv.t0

let send conn resp = conn.out <- conn.out ^ Wire.encode_response resp

(* A Submit acknowledgement: queue it for reply-stage timing — the
   span closes when the frame's last byte reaches the socket. *)
let send_reply srv conn ~req ~txn resp =
  send conn resp;
  conn.replies <-
    conn.replies
    @ [ (req, txn, mono srv, conn.sent + String.length conn.out) ]

(* Record one stage span: the hub's windowed/cumulative histograms
   always see it; the ring only when the flight recorder is on.
   [hub_us] overrides the histogram reading (the execute stage reports
   gate-exclusive time while the ring keeps the full interval). *)
let record_stage srv ?hub_us ~stage ~req ~txn ~conn_id t0 t1 =
  let sp =
    {
      Stage.sp_stage = stage;
      sp_req = req;
      sp_txn = txn;
      sp_conn = conn_id;
      sp_t0 = t0;
      sp_t1 = t1;
    }
  in
  Telemetry.Hub.observe_stage srv.hub stage
    (match hub_us with Some us -> us | None -> Stage.dur_us sp);
  match srv.recorder with
  | Some r -> Stage.Recorder.record r sp
  | None -> ()

let flag_dump srv reason =
  if srv.pending_dump = None then srv.pending_dump <- Some reason

(* ----- the write-ahead log ----- *)

let write_all fd s =
  let rec go off =
    if off < String.length s then
      go (off + Unix.write_substring fd s off (String.length s - off))
  in
  go 0

let read_whole path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some s
  end
  else None

let write_file_sync path s =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd s;
  Unix.fsync fd;
  Unix.close fd

(* Cut the log at the current engine position: one [Steps] record
   covering the step calls since the last cut, then any outcomes those
   steps produced — the ordering that makes every intact log prefix
   reproduce exactly the state its audit records claim. *)
let wal_cut srv =
  match srv.wal with
  | Some ws when srv.recovery = None ->
      let calls = Engine.step_calls srv.eng in
      let n = calls - ws.last_step_calls in
      ws.last_step_calls <- calls;
      Wal.Closure.push ws.closure (Wal.Steps n);
      Wal.Writer.log_steps ws.w n
  | _ -> ()

(* Log one replay event (Submit or Kill), cutting first so the record
   lands after the steps that preceded the corresponding engine call. *)
let wal_event srv r =
  match srv.wal with
  | Some ws when srv.recovery = None ->
      wal_cut srv;
      Wal.Closure.push ws.closure r;
      Wal.Writer.append ws.w r
  | _ -> ()

let wal_counts srv =
  Wal.Counts
    {
      submitted = Engine.submitted srv.eng;
      committed = Engine.committed_top srv.eng;
      aborted = Engine.aborted_top srv.eng;
      vetoed = Engine.vetoed srv.eng;
    }

(* Snapshot, then rotate the log.  The snapshot is the compacted
   replay closure of the whole history (merged step runs, no
   outcomes) plus the monitor's graph and the engine counters, written
   whole to a temp file and renamed into place; the log then restarts
   as a fresh generation whose [base_seq] is the snapshot's cover
   point.  Every crash window is safe: before the snapshot rename the
   old snapshot and full log recover; between the two renames the new
   snapshot plus the old log's tail (records with seq >= the cover
   point) recover; after both, the new snapshot plus the new, nearly
   empty generation. *)
let take_snapshot srv ws =
  wal_cut srv;
  Wal.Writer.flush ws.w;
  let next_seq = Wal.Writer.next_seq ws.w in
  let events = Wal.Closure.records ws.closure in
  let g = Monitor.graph (Admission.monitor (Engine.admission srv.eng)) in
  let sn =
    {
      Wal.sn_next_seq = next_seq;
      sn_meta = ws.wal_meta;
      sn_events = events;
      sn_sg = Wal.sg_state_of_graph g;
      sn_counts = wal_counts srv;
    }
  in
  let tmp = ws.wal_path ^ ".snap.tmp" in
  write_file_sync tmp (Wal.encode_snapshot sn);
  Sys.rename tmp (ws.wal_path ^ ".snap");
  let rot = ws.wal_path ^ ".rot" in
  let fd' =
    Unix.openfile rot [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let old_fd = !(ws.wal_fd) in
  ws.wal_fd := fd';
  let w' = ws.mk_writer ~fresh:true ~base_seq:next_seq in
  ws.w <- w';
  Wal.Writer.append w' ws.wal_meta;
  Wal.Writer.flush w';
  Sys.rename rot ws.wal_path;
  Unix.close old_fd;
  ws.snap_mark <- Wal.Writer.appended w';
  Metrics.incr (Metrics.counter srv.metrics "served.wal.snapshots");
  if srv.verbose then
    Format.eprintf "ntserved: snapshot at seq %d (%d replay events)@." next_seq
      (List.length events)

let wal_turn srv =
  match srv.wal with
  | Some ws when srv.recovery = None ->
      wal_cut srv;
      Wal.Writer.tick ws.w;
      if
        ws.snapshot_every > 0
        && Wal.Writer.appended ws.w - ws.snap_mark >= ws.snapshot_every
      then take_snapshot srv ws
  | _ -> ()

(* ----- recovery ----- *)

let event_weight = function `Steps n -> n | `Submit _ | `Kill _ -> 1

(* Split up to [burst] weight off the head of an event list, cutting a
   long [Steps] run mid-way so one turn never replays unboundedly. *)
let take_chunk burst events =
  let rec go acc w evs =
    if w >= burst then (List.rev acc, evs)
    else
      match evs with
      | [] -> (List.rev acc, [])
      | `Steps n :: rest when n > burst - w ->
          ( List.rev (`Steps (burst - w) :: acc),
            `Steps (n - (burst - w)) :: rest )
      | ev :: rest -> go (ev :: acc) (w + event_weight ev) rest
  in
  go [] 0 events

let recovery_turn srv ~burst rc =
  let t0 = mono srv in
  (match rc.phases with
  | [] -> ()
  | (events, check) :: rest -> (
      let chunk, remaining = take_chunk burst events in
      (match Engine.replay srv.eng chunk with
      | Ok _ -> ()
      | Error e ->
          Format.eprintf "ntserved: recovery failed: %s@." e;
          exit 2);
      rc.replayed <-
        rc.replayed + List.fold_left (fun a e -> a + event_weight e) 0 chunk;
      Metrics.incr
        ~by:(List.fold_left (fun a e -> a + event_weight e) 0 chunk)
        (Metrics.counter srv.metrics "served.wal.replayed");
      if remaining <> [] then rc.phases <- (remaining, check) :: rest
      else begin
        (match check () with
        | Ok () -> ()
        | Error e ->
            Format.eprintf "ntserved: recovery validation failed: %s@." e;
            exit 2);
        rc.phases <- rest
      end));
  record_stage srv ~stage:Stage.wal_replay_stage ~req:None ~txn:None ~conn_id:(-1) t0
    (mono srv);
  if rc.phases <> [] then
    srv.status <- Wire.Recovering { replayed = rc.replayed; total = rc.total }
  else begin
    srv.recovery <- None;
    srv.status <-
      Wire.Recovered { replayed = rc.replayed; torn = rc.rec_torn };
    (* Serving resumes here: the log continues from the replayed
       position, so the step-call cursor starts at the replayed count. *)
    (match srv.wal with
    | Some ws -> ws.last_step_calls <- Engine.step_calls srv.eng
    | None -> ());
    if srv.verbose then
      Format.eprintf "ntserved: recovered %d events%s@." rc.replayed
        (if rc.rec_torn then " (torn tail truncated)" else "")
  end

let wal_fatal path e =
  Format.eprintf "ntserved: %s: %s@." path e;
  exit 2

let drop_seq n l =
  let rec go n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> go (n - 1) r in
  go n l

(* Open (or create) the log at [path], recover whatever it and its
   snapshot hold, and install the writer.  The damaged tail, if any,
   is truncated before the writer appends; the replay itself runs in
   bounded chunks inside the select loop (see [recovery_turn]), with
   submissions rejected until it completes. *)
let init_durability srv ~path ~fsync_batch ~fsync_interval_s ~snapshot_every
    ~meta =
  let header_len = String.length (Wal.header ~magic:Wal.wal_magic ~base_seq:0) in
  let image = Option.value ~default:"" (read_whole path) in
  let scanned =
    match Wal.scan ~magic:Wal.wal_magic image with
    | Ok s -> s
    | Error e -> wal_fatal path e
  in
  let torn = scanned.Wal.sc_tail <> Wal.Clean in
  (match scanned.Wal.sc_tail with
  | Wal.Torn { valid; why } ->
      Format.eprintf "ntserved: %s: torn tail (%s); truncating to %d bytes@."
        path why valid
  | Wal.Clean -> ());
  let snap_path = path ^ ".snap" in
  let snapshot =
    match read_whole snap_path with
    | None -> None
    | Some s -> (
        match Wal.decode_snapshot s with
        | Ok sn -> Some sn
        | Error e ->
            (* A corrupt snapshot is never trusted.  When the log still
               holds the whole history we can ignore it; when the log
               was rotated past it, nothing can rebuild the prefix. *)
            if scanned.Wal.sc_base_seq = 0 then begin
              Format.eprintf
                "ntserved: %s: %s; ignoring it (log holds full history)@."
                snap_path e;
              None
            end
            else wal_fatal snap_path e)
  in
  (match snapshot with
  | Some sn when sn.Wal.sn_meta <> meta ->
      wal_fatal snap_path
        "snapshot belongs to a different server configuration"
  | _ ->
      if snapshot = None && scanned.Wal.sc_base_seq > 0 then
        wal_fatal path
          "log was rotated past a snapshot that is now missing");
  let fresh = scanned.Wal.sc_valid < header_len in
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  Unix.ftruncate fd (if fresh then 0 else scanned.Wal.sc_valid);
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  let fd = ref fd in
  let on_sync () =
    Metrics.incr (Metrics.counter srv.metrics "served.wal.syncs")
  in
  let sink =
    {
      Wal.write = (fun s -> write_all !fd s);
      sync =
        (fun () ->
          let t0 = mono srv in
          Unix.fsync !fd;
          record_stage srv ~stage:Stage.wal_fsync_stage ~req:None ~txn:None ~conn_id:(-1)
            t0 (mono srv));
    }
  in
  let mk_writer ~fresh ~base_seq =
    Wal.Writer.create ~fsync_batch ~fsync_interval_s
      ~clock:(fun () -> mono srv)
      ~fresh ~base_seq ~on_sync sink
  in
  let skip = match snapshot with Some sn -> sn.Wal.sn_next_seq | None -> 0 in
  let kept =
    drop_seq (skip - scanned.Wal.sc_base_seq) scanned.Wal.sc_records
  in
  let tail =
    match
      Wal.replayable_of_records ~base_seq:scanned.Wal.sc_base_seq
        ~skip_below:skip scanned.Wal.sc_records
    with
    | Ok rp -> rp
    | Error e -> wal_fatal path e
  in
  (match tail.Wal.rp_meta with
  | Some (m, _) when m <> meta ->
      wal_fatal path "log belongs to a different server configuration"
  | None when snapshot = None && scanned.Wal.sc_records <> [] ->
      wal_fatal path "log has records but no meta record"
  | _ -> ());
  let phases =
    (match snapshot with
    | None -> []
    | Some sn -> (
        match
          Wal.replayable_of_records ~base_seq:0 ~skip_below:0 sn.Wal.sn_events
        with
        | Error e -> wal_fatal snap_path e
        | Ok rp ->
            [
              ( rp.Wal.rp_events,
                fun () ->
                  let g =
                    Monitor.graph
                      (Admission.monitor (Engine.admission srv.eng))
                  in
                  match Wal.check_sg_state sn.Wal.sn_sg g with
                  | Error _ as e -> e
                  | Ok () ->
                      if sn.Wal.sn_counts <> wal_counts srv then
                        Error "snapshot counters disagree with replayed engine"
                      else Ok () );
            ]))
    @ [
        ( tail.Wal.rp_events,
          fun () ->
            match
              Wal.check_outcomes
                (fun t -> Engine.state srv.eng t)
                tail.Wal.rp_outcomes
            with
            | Ok _ -> Ok ()
            | Error _ as e -> e );
      ]
  in
  let total =
    List.fold_left
      (fun a (evs, _) ->
        a + List.fold_left (fun a e -> a + event_weight e) 0 evs)
      0 phases
  in
  let base_seq =
    if fresh then skip
    else scanned.Wal.sc_base_seq + List.length scanned.Wal.sc_records
  in
  let w = mk_writer ~fresh ~base_seq in
  let seed_events =
    Wal.compact
      ((match snapshot with Some sn -> sn.Wal.sn_events | None -> []) @ kept)
  in
  let ws =
    {
      wal_path = path;
      snapshot_every;
      wal_fd = fd;
      mk_writer;
      w;
      last_step_calls = 0;
      closure = Wal.Closure.of_records seed_events;
      snap_mark = Wal.Writer.appended w;
      wal_meta = meta;
    }
  in
  (* A brand-new generation begins with its Meta record; an existing
     one already holds it (validated above). *)
  if fresh then begin
    Wal.Writer.append w meta;
    ws.snap_mark <- Wal.Writer.appended w
  end;
  srv.wal <- Some ws;
  if total > 0 || torn || snapshot <> None || scanned.Wal.sc_records <> []
  then begin
    srv.recovery <-
      Some { phases; total; replayed = 0; rec_torn = torn };
    srv.status <- Wire.Recovering { replayed = 0; total }
  end
  else srv.status <- Wire.Fresh

let wal_shutdown srv =
  match srv.wal with
  | None -> ()
  | Some ws ->
      wal_cut srv;
      Wal.Writer.flush ws.w;
      (try Unix.close !(ws.wal_fd) with Unix.Unix_error _ -> ())

let sanitize_reason s =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '-' || c = '_'
      then c
      else '-')
    s

(* Write the ring as JSONL + Chrome trace.  Anomaly dumps are
   throttled to one per second ([force] is for the Dump request and
   SIGQUIT); files are numbered so later dumps never clobber earlier
   evidence. *)
let do_dump srv ~force reason =
  match srv.recorder with
  | None -> None
  | Some r ->
      let now = mono srv in
      if (not force) && now -. srv.last_dump < 1.0 then None
      else begin
        srv.last_dump <- now;
        srv.dump_seq <- srv.dump_seq + 1;
        let base =
          Printf.sprintf "flight-%03d-%s" srv.dump_seq (sanitize_reason reason)
        in
        let jsonl = Filename.concat srv.flight_dir (base ^ ".jsonl") in
        let chrome = Filename.concat srv.flight_dir (base ^ ".trace.json") in
        let oc = open_out jsonl in
        let spans = Stage.Recorder.dump_jsonl r ~reason ~now oc in
        close_out oc;
        let oc = open_out chrome in
        ignore (Stage.Recorder.dump_chrome r ~reason ~now oc);
        close_out oc;
        Metrics.incr (Metrics.counter srv.metrics "served.flight_dumps");
        if srv.verbose then
          Format.eprintf "ntserved: flight dump (%s): %d spans -> %s@." reason
            spans jsonl;
        Some (spans, Stage.Recorder.dropped r, jsonl, chrome)
      end

let close_conn srv conn =
  Hashtbl.remove srv.conns conn.fd;
  List.iter
    (fun t ->
      wal_event srv (Wal.Kill { txn = t });
      ignore (Engine.kill srv.eng t))
    conn.live;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

(* Replication serves logical registers: re-transform the grown logical
   forest (version assignment is prefix-stable, so already-submitted
   programs keep their physical form) and submit the new program's
   physical image. *)
let physical_of srv prog =
  if not srv.replicated then Ok prog
  else begin
    srv.logical_rev <- prog :: srv.logical_rev;
    let forest = List.rev srv.logical_rev in
    match
      Replication.replicate Check.replication_config
        ~objects:(List.map fst srv.objects) forest
    with
    | plan -> (
        match List.rev plan.Replication.physical_forest with
        | p :: _ -> Ok p
        | [] -> Error "empty physical forest")
    | exception Invalid_argument e ->
        srv.logical_rev <- List.tl srv.logical_rev;
        Error e
  end

let wire_state srv t : Wire.txn_state =
  match Engine.state srv.eng t with
  | Engine.Unknown | Engine.Pending -> Wire.Pending
  | Engine.Running -> Wire.Running
  | Engine.Committed v -> Wire.Committed (Value.to_string v)
  | Engine.Aborted None -> Wire.Aborted None
  | Engine.Aborted (Some veto) ->
      Wire.Aborted (Some veto.Admission.witness)

(* A multiversion backend serializes by pseudotime; the completion-order
   monitor then flags its reads as inappropriate even when correct, so
   mvts is judged on cycle alarms alone. *)
let actionable_alarms srv =
  if srv.backend = Check.Mvts then Engine.cycle_alarms srv.eng
  else Engine.alarms srv.eng

let quiesced_response srv =
  Wire.Quiesced
    {
      committed = Engine.committed_top srv.eng;
      aborted = Engine.aborted_top srv.eng;
      vetoed = Engine.vetoed srv.eng;
      alarms = actionable_alarms srv;
      per_shard = [];
    }

let req_of srv t =
  match Txn_id.Tbl.find_opt srv.txns t with
  | Some r -> r.req
  | None -> None

let subscriber_count srv =
  Hashtbl.fold (fun _ c n -> if c.subscribed then n + 1 else n) srv.conns 0

let build_frame srv ~cut =
  (if cut then Telemetry.Hub.cut else Telemetry.Hub.peek)
    srv.hub ~eng:srv.eng ~alarms:(actionable_alarms srv)
    ~conns:(Hashtbl.length srv.conns) ~subscribers:(subscriber_count srv)
    ~now:(mono srv)

(* The completion hook: runs inside Engine.step at every top-level
   Commit/Abort, while the admission record is fresh (and before the
   engine retires its stage_times entry). *)
let on_complete srv txn outcome =
  (* Audit the completion in the log (buffered; appended after the
     covering Steps record at the next cut).  During recovery the
     replayed completions are already in the log. *)
  (match srv.wal with
  | Some ws when srv.recovery = None ->
      let oc =
        match (outcome, Engine.state srv.eng txn) with
        | `Committed, Engine.Committed v -> Wal.Committed (Value.to_string v)
        | `Aborted, Engine.Aborted veto ->
            Wal.Aborted (Option.map (fun v -> v.Admission.witness) veto)
        | `Committed, _ -> Wal.Committed "?"
        | `Aborted, _ -> Wal.Aborted None
      in
      Wal.Writer.note_outcome ws.w ~txn oc
  | _ -> ());
  match Txn_id.Tbl.find_opt srv.txns txn with
  | None -> ()
  | Some r -> (
      let now = mono srv in
      let latency_us =
        int_of_float (Float.max 0.0 ((now -. r.t_submit) *. 1e6))
      in
      Telemetry.Hub.observe_latency srv.hub latency_us;
      let txn_s = Some (Txn_id.to_string txn) in
      srv.gc_ctx <- (r.req, txn_s, r.conn_id);
      (* execute / gate stages off the engine's clock-stamped readings.
         Histograms get gate-exclusive execute time so stage sums do
         not double-count; the ring keeps the full execute interval
         with a gate span nested at its end, which the flight analyzer
         deduplicates by containment. *)
      (match Engine.stage_times srv.eng txn with
      | Some st ->
          let gate_us =
            int_of_float ((st.Engine.st_gate *. 1e6) +. 0.5)
          in
          let exec_us =
            int_of_float
              (Float.max 0.0
                 ((st.Engine.st_complete -. st.Engine.st_start) *. 1e6))
          in
          record_stage srv
            ~hub_us:(max 0 (exec_us - gate_us))
            ~stage:"execute" ~req:r.req ~txn:txn_s ~conn_id:r.conn_id
            st.Engine.st_start st.Engine.st_complete;
          record_stage srv ~stage:"gate" ~req:r.req ~txn:txn_s
            ~conn_id:r.conn_id
            (st.Engine.st_complete -. st.Engine.st_gate)
            st.Engine.st_complete
      | None -> ());
      let veto =
        if outcome = `Aborted then
          Admission.veto_of (Engine.admission srv.eng) txn
        else None
      in
      let slow = veto = None && latency_us >= srv.slow_us in
      if veto <> None then flag_dump srv "veto";
      if slow then flag_dump srv "slow";
      match srv.audit with
      | None -> ()
      | Some audit -> (
          match veto with
          | Some v ->
              Telemetry.Audit.veto audit ~now ~req:r.req ~client:r.client ~txn
                ~latency_us v
          | None ->
              if slow then
                let outcome =
                  match outcome with
                  | `Committed -> "committed"
                  | `Aborted -> "aborted"
                in
                Telemetry.Audit.slow audit ~now ~req:r.req ~client:r.client
                  ~txn ~latency_us ~outcome))

let handle_request srv conn (req : Wire.request) =
  Metrics.incr (Metrics.counter srv.metrics "served.requests");
  match req with
  | Wire.Hello { client } ->
      conn.greeted <- true;
      conn.client_name <- client;
      send conn
        (Wire.Welcome
           {
             server = "ntserved";
             version = Version.string;
             backend = Check.backend_name srv.backend;
             objects =
               List.map
                 (fun (x, dt) -> (Obj_id.name x, Program_io.dtype_decl dt))
                 srv.objects;
             status = server_status srv;
             shards = 1;
           })
  | Wire.Submit { req; _ } when not conn.greeted ->
      send conn (Wire.Rejected { why = "say hello first"; req })
  | Wire.Submit { req; _ } when srv.draining ->
      send conn (Wire.Rejected { why = "server is draining"; req })
  | Wire.Submit { req; _ } when srv.recovery <> None ->
      send conn (Wire.Rejected { why = "server is recovering"; req })
  | Wire.Submit { program; req } -> (
      let t_v0 = mono srv in
      srv.gc_ctx <- (req, None, conn.id);
      match Program_io.parse_program_text program with
      | Error why -> send conn (Wire.Rejected { why; req })
      | Ok prog -> (
          match physical_of srv prog with
          | Error why -> send conn (Wire.Rejected { why; req })
          | Ok phys -> (
              let t_v1 = mono srv in
              record_stage srv ~stage:"validate" ~req ~txn:None
                ~conn_id:conn.id t_v0 t_v1;
              match Engine.submit srv.eng phys with
              | Error why -> send conn (Wire.Rejected { why; req })
              | Ok txn ->
                  let t_a1 = mono srv in
                  wal_event srv
                    (Wal.Submit
                       {
                         req;
                         client = conn.client_name;
                         program = Program_io.program_to_string phys;
                       });
                  record_stage srv ~stage:"admit" ~req
                    ~txn:(Some (Txn_id.to_string txn))
                    ~conn_id:conn.id t_v1 t_a1;
                  conn.live <- txn :: conn.live;
                  Txn_id.Tbl.replace srv.txns txn
                    {
                      req;
                      client = conn.client_name;
                      t_submit = t_a1;
                      conn_id = conn.id;
                    };
                  Metrics.incr
                    (Metrics.counter srv.metrics "served.submissions");
                  send_reply srv conn ~req
                    ~txn:(Some (Txn_id.to_string txn))
                    (Wire.Accepted { txn; req }))))
  | Wire.Status t ->
      (match Engine.state srv.eng t with
      | Engine.Committed _ | Engine.Aborted _ ->
          conn.live <- List.filter (fun u -> not (Txn_id.equal u t)) conn.live
      | _ -> ());
      send conn
        (Wire.State { txn = t; state = wire_state srv t; req = req_of srv t })
  | Wire.Metrics -> send conn (Wire.Metrics_dump (Metrics.to_json srv.metrics))
  | Wire.Subscribe ->
      conn.subscribed <- true;
      Metrics.incr (Metrics.counter srv.metrics "served.subscribes");
      (* One frame right away (the open interval), then one per tick. *)
      send conn (Wire.Telemetry (build_frame srv ~cut:false))
  | Wire.Ping ->
      send conn
        (Wire.Pong
           {
             t_mono = mono srv;
             live = Engine.live_top srv.eng;
             doomed = Engine.doomed_count srv.eng;
             conns = Hashtbl.length srv.conns;
             status = server_status srv;
           })
  | Wire.Dump -> (
      match do_dump srv ~force:true "request" with
      | Some (spans, dropped, jsonl, chrome) ->
          send conn (Wire.Dumped { spans; dropped; jsonl; chrome })
      | None -> send conn (Wire.Error_msg "flight recorder disabled"))
  | Wire.Quiesce -> conn.wants_quiesce <- true
  | Wire.Shutdown ->
      srv.draining <- true;
      send conn Wire.Goodbye;
      conn.closing <- true

let pump_frames srv conn =
  let rec go () =
    if not conn.closing then
      match Wire.Reader.next conn.reader with
      | Ok None ->
          (* no complete frame buffered: the next bytes start a frame *)
          if Wire.Reader.buffered conn.reader = 0 then conn.rx_start <- None
      | Ok (Some payload) ->
          let t_r1 = mono srv in
          let t_r0 = Option.value ~default:t_r1 conn.rx_start in
          conn.rx_start <-
            (if Wire.Reader.buffered conn.reader > 0 then Some t_r1 else None);
          (match Wire.decode_request payload with
          | Ok req ->
              let t_d1 = mono srv in
              (* Read (frame assembly) and decode spans carry the
                 request id when the frame was a submission — the link
                 that chains them to the later stages. *)
              let rid =
                match req with Wire.Submit { req; _ } -> req | _ -> None
              in
              record_stage srv ~stage:"read" ~req:rid ~txn:None
                ~conn_id:conn.id t_r0 t_r1;
              record_stage srv ~stage:"decode" ~req:rid ~txn:None
                ~conn_id:conn.id t_r1 t_d1;
              handle_request srv conn req
          | Error e ->
              send conn (Wire.Error_msg e);
              flag_dump srv "reader-error";
              conn.closing <- true);
          go ()
      | Error e ->
          send conn (Wire.Error_msg e);
          flag_dump srv "reader-error";
          conn.closing <- true
  in
  go ()

(* ----- the select loop ----- *)

let terminate = ref false
let dump_signal = ref false  (* SIGQUIT: dump the flight recorder *)
let next_conn_id = ref 0

(* Prometheus text export: write-then-rename so scrapers never see a
   torn file. *)
let export_prom srv =
  match srv.prom with
  | None -> ()
  | Some path ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      let fmt = Format.formatter_of_out_channel oc in
      Metrics.pp_prometheus fmt srv.metrics;
      Format.pp_print_flush fmt ();
      close_out oc;
      Sys.rename tmp path

let run_server listen_fd srv ~read_timeout ~burst ~verbose =
  let buf = Bytes.create 8192 in
  let idle = ref false in
  let continue = ref true in
  let last_frame = ref (mono srv) in
  while !continue do
    if !terminate then srv.draining <- true;
    let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) srv.conns [] in
    let rfds =
      (if srv.draining then [] else [ listen_fd ])
      @ List.filter
          (fun fd -> not (Hashtbl.find srv.conns fd).closing)
          conn_fds
    in
    let wfds =
      List.filter
        (fun fd ->
          let c = Hashtbl.find srv.conns fd in
          String.length c.out > c.out_off)
        conn_fds
    in
    let timeout = if !idle then 0.05 else 0.0 in
    let r, w, _ =
      try Unix.select rfds wfds [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* accepts *)
    if List.mem listen_fd r then begin
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          incr next_conn_id;
          Hashtbl.replace srv.conns fd
            {
              fd;
              id = !next_conn_id;
              reader = Wire.Reader.create ();
              out = "";
              out_off = 0;
              sent = 0;
              greeted = false;
              client_name = "?";
              subscribed = false;
              live = [];
              wants_quiesce = false;
              closing = false;
              last_rx = Unix.gettimeofday ();
              rx_start = None;
              replies = [];
            };
          Metrics.incr (Metrics.counter srv.metrics "served.accepts")
      | exception Unix.Unix_error _ -> ()
    end;
    (* reads *)
    List.iter
      (fun fd ->
        if fd != listen_fd then
          match Hashtbl.find_opt srv.conns fd with
          | None -> ()
          | Some conn -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> close_conn srv conn
              | n ->
                  conn.last_rx <- Unix.gettimeofday ();
                  if conn.rx_start = None then
                    conn.rx_start <- Some (mono srv);
                  Wire.Reader.feed conn.reader (Bytes.sub_string buf 0 n);
                  pump_frames srv conn
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  ()
              | exception Unix.Unix_error _ -> close_conn srv conn))
      r;
    (* engine work: while a recovery is in flight the engine replays
       the log in bounded chunks instead of serving (submissions are
       rejected above), so Ping and Status stay responsive *)
    let status =
      match srv.recovery with
      | Some rc ->
          recovery_turn srv ~burst rc;
          `Progress
      | None -> Engine.drain ~burst srv.eng
    in
    wal_turn srv;
    idle := status <> `Progress;
    if status = `Truncated then begin
      if verbose then Format.eprintf "ntserved: step budget exhausted@.";
      srv.draining <- true
    end;
    (* telemetry tick: close the window, push a frame to every
       subscriber, refresh the prometheus export *)
    if srv.telemetry_interval > 0.0 then begin
      let now = mono srv in
      if now -. !last_frame >= srv.telemetry_interval then begin
        last_frame := now;
        let frame = build_frame srv ~cut:true in
        Hashtbl.iter
          (fun _ c ->
            if c.subscribed && not c.closing then
              send c (Wire.Telemetry frame))
          srv.conns;
        export_prom srv
      end
    end;
    (* quiesce waiters are answered only when truly idle *)
    if status = `Quiescent then
      Hashtbl.iter
        (fun _ conn ->
          if conn.wants_quiesce then begin
            conn.wants_quiesce <- false;
            send conn (quiesced_response srv)
          end)
        srv.conns;
    (* writes *)
    List.iter
      (fun fd ->
        match Hashtbl.find_opt srv.conns fd with
        | None -> ()
        | Some conn -> (
            let pending = String.length conn.out - conn.out_off in
            if pending > 0 then
              match Unix.write_substring fd conn.out conn.out_off pending with
              | n ->
                  conn.out_off <- conn.out_off + n;
                  (* close reply spans whose last byte just flushed *)
                  if conn.replies <> [] then begin
                    let flushed = conn.sent + conn.out_off in
                    let matured, waiting =
                      List.partition
                        (fun (_, _, _, eoff) -> eoff <= flushed)
                        conn.replies
                    in
                    if matured <> [] then begin
                      conn.replies <- waiting;
                      let now = mono srv in
                      List.iter
                        (fun (req, txn, t0, _) ->
                          record_stage srv ~stage:"reply" ~req ~txn
                            ~conn_id:conn.id t0 now)
                        matured
                    end
                  end;
                  if conn.out_off >= String.length conn.out then begin
                    conn.sent <- conn.sent + String.length conn.out;
                    conn.out <- "";
                    conn.out_off <- 0;
                    if conn.closing then close_conn srv conn
                  end
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  ()
              | exception Unix.Unix_error _ -> close_conn srv conn))
      w;
    (* GC pauses completed since the last turn become spans attributed
       to the most recently touched request context (exact when the
       pause fell inside that request's handling, approximate when it
       fell between requests — see doc/observability.mld). *)
    (match srv.gcmon with
    | None -> ()
    | Some g ->
        let now = mono srv in
        let pauses = Gcmon.poll g ~now in
        if pauses <> [] then begin
          let req, txn, cid = srv.gc_ctx in
          List.iter
            (fun (p : Gcmon.pause) ->
              let dur_us =
                int_of_float
                  (Float.max 0.0 ((p.Gcmon.gc_t1 -. p.Gcmon.gc_t0) *. 1e6)
                  +. 0.5)
              in
              Telemetry.Hub.observe_gc srv.hub ~dur_us;
              match srv.recorder with
              | Some rcd ->
                  Stage.Recorder.record rcd
                    {
                      Stage.sp_stage = Stage.gc_stage;
                      sp_req = req;
                      sp_txn = txn;
                      sp_conn = cid;
                      sp_t0 = p.Gcmon.gc_t0;
                      sp_t1 = p.Gcmon.gc_t1;
                    }
              | None -> ())
            pauses
        end);
    (* Anomaly dumps are deferred to the bottom of the turn and held
       while any Accepted answer is still unflushed, so the flagged
       request's reply span makes it into the ring first (bounded hold:
       a stuck peer cannot postpone evidence forever). *)
    (match srv.pending_dump with
    | None -> ()
    | Some reason ->
        let replies_waiting =
          Hashtbl.fold (fun _ c acc -> acc || c.replies <> []) srv.conns false
        in
        if (not replies_waiting) || srv.dump_hold >= 100 then begin
          srv.pending_dump <- None;
          srv.dump_hold <- 0;
          ignore (do_dump srv ~force:false reason)
        end
        else srv.dump_hold <- srv.dump_hold + 1);
    if !dump_signal then begin
      dump_signal := false;
      ignore (do_dump srv ~force:true "sigquit")
    end;
    (* read timeouts *)
    if read_timeout > 0.0 then begin
      let now = Unix.gettimeofday () in
      let stale =
        Hashtbl.fold
          (fun _ c acc ->
            if now -. c.last_rx > read_timeout && String.length c.out = c.out_off
            then c :: acc
            else acc)
          srv.conns []
      in
      List.iter (fun c -> close_conn srv c) stale
    end;
    (* drain exit: idle engine, nothing buffered *)
    if srv.draining && !idle then begin
      let flushed =
        Hashtbl.fold
          (fun _ c acc -> acc && String.length c.out = c.out_off)
          srv.conns true
      in
      if flushed then begin
        Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) srv.conns;
        Hashtbl.reset srv.conns;
        continue := false
      end
    end
  done

(* ----- sharded serving (--shards > 1) ----- *)

(* With more than one shard the engine no longer lives in the select
   loop: [Shard_service] runs one worker per shard on its own domain,
   and this loop is pure I/O — it plans submissions on the router,
   answers status from the router's thread-safe bookkeeping, and builds
   telemetry frames from the workers' published counter snapshots.  The
   sharded loop drops the single-engine extras that assume an in-loop
   engine (write-ahead log, flight recorder, audit log, GC
   attribution); [--obs-out] still works, with one sink per shard. *)

type sserver = {
  svc : Shard_service.t;
  s_backend : Check.backend;
  s_objects : (Obj_id.t * Datatype.t) list;
  s_conns : (Unix.file_descr, conn) Hashtbl.t;
  s_metrics : Metrics.t;
  s_hub : Telemetry.Hub.t;
  s_t0 : float;
  s_interval : float;
  s_prom : string option;
  s_verbose : bool;
  mutable s_draining : bool;
  (* submission id -> submit time: the open set the completion scan
     walks to feed the latency histogram *)
  s_open : (int, float) Hashtbl.t;
  (* submission id -> client request id: echoed in every State answer
     (kept for the server's lifetime — clients poll Status after
     completion, when the open set no longer has the submission) *)
  s_reqs : (int, string) Hashtbl.t;
  notify_r : Unix.file_descr;  (* self-pipe: workers wake the select *)
}

let s_mono ss = Unix.gettimeofday () -. ss.s_t0

let s_stats ss = Shard_service.stats ss.svc

let s_sum f ss = Array.fold_left (fun acc st -> acc + f st) 0 (s_stats ss)

(* Same mvts carve-out as the single-engine path: pseudotime order
   makes the completion-order monitor's "inappropriate read" alarms
   spurious, so only cycle alarms are actionable. *)
let s_alarms ss =
  if ss.s_backend = Check.Mvts then
    s_sum (fun st -> st.Shard_engine.sh_cycle_alarms) ss
  else s_sum (fun st -> st.Shard_engine.sh_alarms) ss

let s_counts ss =
  Telemetry.Hub.merge
    (Array.to_list
       (Array.map
          (fun (st : Shard_engine.stats) ->
            {
              Telemetry.Hub.n_submitted = st.sh_submitted;
              n_committed = st.sh_committed;
              n_aborted = st.sh_aborted;
              n_vetoed = st.sh_vetoed;
              n_orphans = st.sh_orphans;
              n_live = st.sh_live;
              n_doomed = st.sh_doomed;
              n_sg_nodes = st.sh_sg_nodes;
              n_sg_edges = st.sh_sg_edges;
              n_sg_reorders = st.sh_sg_reorders;
            })
          (s_stats ss)))

let s_rows ss =
  Array.to_list
    (Array.mapi
       (fun i (st : Shard_engine.stats) ->
         {
           Wire.r_shard = i;
           r_submitted = st.sh_submitted;
           r_committed = st.sh_committed;
           r_aborted = st.sh_aborted;
           r_vetoed = st.sh_vetoed;
           r_live = st.sh_live;
         })
       (s_stats ss))

let s_subscribers ss =
  Hashtbl.fold (fun _ c n -> if c.subscribed then n + 1 else n) ss.s_conns 0

let s_frame ss ~cut =
  (if cut then Telemetry.Hub.cut_counts else Telemetry.Hub.peek_counts)
    ~per_shard:(s_rows ss) ss.s_hub ~counts:(s_counts ss)
    ~alarms:(s_alarms ss)
    ~conns:(Hashtbl.length ss.s_conns)
    ~subscribers:(s_subscribers ss) ~now:(s_mono ss)

(* Client-visible totals come from the router (merged tops: a
   cross-shard program counts once, not once per piece); vetoes and
   alarms are engine-level, summed over shards. *)
let s_quiesced ss =
  let committed, aborted = Shard_router.counts (Shard_service.router ss.svc) in
  Wire.Quiesced
    {
      committed;
      aborted;
      vetoed = s_sum (fun st -> st.Shard_engine.sh_vetoed) ss;
      alarms = s_alarms ss;
      per_shard = s_rows ss;
    }

let s_close_conn ss conn =
  Hashtbl.remove ss.s_conns conn.fd;
  List.iter
    (fun t ->
      match Txn_id.path t with
      | [ g ] -> Shard_service.kill ss.svc g
      | _ -> ())
    conn.live;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ())

let s_state ss g : Wire.txn_state =
  match Shard_service.result ss.svc g with
  | Shard_router.Pending -> Wire.Running
  | Shard_router.Committed v -> Wire.Committed (Value.to_string v)
  | Shard_router.Aborted None -> Wire.Aborted None
  | Shard_router.Aborted (Some veto) ->
      Wire.Aborted (Some veto.Admission.witness)

let handle_srequest ss conn (req : Wire.request) =
  Metrics.incr (Metrics.counter ss.s_metrics "served.requests");
  match req with
  | Wire.Hello { client } ->
      conn.greeted <- true;
      conn.client_name <- client;
      send conn
        (Wire.Welcome
           {
             server = "ntserved";
             version = Version.string;
             backend = Check.backend_name ss.s_backend;
             objects =
               List.map
                 (fun (x, dt) -> (Obj_id.name x, Program_io.dtype_decl dt))
                 ss.s_objects;
             status = Wire.Fresh;
             shards = Shard_service.shards ss.svc;
           })
  | Wire.Submit { req; _ } when not conn.greeted ->
      send conn (Wire.Rejected { why = "say hello first"; req })
  | Wire.Submit { req; _ } when ss.s_draining ->
      send conn (Wire.Rejected { why = "server is draining"; req })
  | Wire.Submit { program; req } -> (
      match Program_io.parse_program_text program with
      | Error why -> send conn (Wire.Rejected { why; req })
      | Ok prog -> (
          match Shard_service.submit ss.svc prog with
          | Error why -> send conn (Wire.Rejected { why; req })
          | Ok g ->
              let txn = Txn_id.of_path [ g ] in
              conn.live <- txn :: conn.live;
              Hashtbl.replace ss.s_open g (s_mono ss);
              (match req with
              | Some r -> Hashtbl.replace ss.s_reqs g r
              | None -> ());
              Metrics.incr (Metrics.counter ss.s_metrics "served.submissions");
              send conn (Wire.Accepted { txn; req })))
  | Wire.Status t ->
      let state, req =
        match Txn_id.path t with
        | [ g ] ->
            let st = s_state ss g in
            (match st with
            | Wire.Committed _ | Wire.Aborted _ ->
                conn.live <-
                  List.filter (fun u -> not (Txn_id.equal u t)) conn.live
            | _ -> ());
            (st, Hashtbl.find_opt ss.s_reqs g)
        | _ -> (Wire.Pending, None)
      in
      send conn (Wire.State { txn = t; state; req })
  | Wire.Metrics ->
      send conn (Wire.Metrics_dump (Metrics.to_json ss.s_metrics))
  | Wire.Subscribe ->
      conn.subscribed <- true;
      Metrics.incr (Metrics.counter ss.s_metrics "served.subscribes");
      send conn (Wire.Telemetry (s_frame ss ~cut:false))
  | Wire.Ping ->
      send conn
        (Wire.Pong
           {
             t_mono = s_mono ss;
             live = Shard_service.pending ss.svc;
             doomed = s_sum (fun st -> st.Shard_engine.sh_doomed) ss;
             conns = Hashtbl.length ss.s_conns;
             status = Wire.Fresh;
           })
  | Wire.Dump ->
      send conn (Wire.Error_msg "flight recorder disabled in sharded mode")
  | Wire.Quiesce -> conn.wants_quiesce <- true
  | Wire.Shutdown ->
      ss.s_draining <- true;
      send conn Wire.Goodbye;
      conn.closing <- true

let pump_sframes ss conn =
  let rec go () =
    if not conn.closing then
      match Wire.Reader.next conn.reader with
      | Ok None -> ()
      | Ok (Some payload) ->
          (match Wire.decode_request payload with
          | Ok req -> handle_srequest ss conn req
          | Error e ->
              send conn (Wire.Error_msg e);
              conn.closing <- true);
          go ()
      | Error e ->
          send conn (Wire.Error_msg e);
          conn.closing <- true
  in
  go ()

(* Close out submissions the workers finished since the last turn:
   feed the latency window and retire them from the open set and from
   their clients' kill lists. *)
let s_scan_completions ss =
  let now = s_mono ss in
  let finished =
    Hashtbl.fold
      (fun g t_submit acc ->
        match Shard_service.result ss.svc g with
        | Shard_router.Pending -> acc
        | Shard_router.Committed _ | Shard_router.Aborted _ ->
            (g, t_submit) :: acc)
      ss.s_open []
  in
  if finished <> [] then begin
    List.iter
      (fun (g, t_submit) ->
        Hashtbl.remove ss.s_open g;
        Telemetry.Hub.observe_latency ss.s_hub
          (int_of_float (Float.max 0.0 ((now -. t_submit) *. 1e6))))
      finished;
    let gone = List.map fst finished in
    Hashtbl.iter
      (fun _ c ->
        if c.live <> [] then
          c.live <-
            List.filter
              (fun t ->
                match Txn_id.path t with
                | [ g ] -> not (List.mem g gone)
                | _ -> true)
              c.live)
      ss.s_conns
  end

let s_export_prom ss =
  match ss.s_prom with
  | None -> ()
  | Some path ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      let fmt = Format.formatter_of_out_channel oc in
      Metrics.pp_prometheus fmt ss.s_metrics;
      Format.pp_print_flush fmt ();
      close_out oc;
      Sys.rename tmp path

let run_sharded_server listen_fd ss ~read_timeout =
  let buf = Bytes.create 8192 in
  let continue = ref true in
  let last_frame = ref (s_mono ss) in
  while !continue do
    if !terminate then ss.s_draining <- true;
    let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) ss.s_conns [] in
    let rfds =
      ss.notify_r
      :: ((if ss.s_draining then [] else [ listen_fd ])
         @ List.filter
             (fun fd -> not (Hashtbl.find ss.s_conns fd).closing)
             conn_fds)
    in
    let wfds =
      List.filter
        (fun fd ->
          let c = Hashtbl.find ss.s_conns fd in
          String.length c.out > c.out_off)
        conn_fds
    in
    (* The workers never need this loop to run the engine, so it can
       sleep; completions poke the self-pipe. *)
    let r, w, _ =
      try Unix.select rfds wfds [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem ss.notify_r r then begin
      match Unix.read ss.notify_r buf 0 (Bytes.length buf) with
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    end;
    if List.mem listen_fd r then begin
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          incr next_conn_id;
          Hashtbl.replace ss.s_conns fd
            {
              fd;
              id = !next_conn_id;
              reader = Wire.Reader.create ();
              out = "";
              out_off = 0;
              sent = 0;
              greeted = false;
              client_name = "?";
              subscribed = false;
              live = [];
              wants_quiesce = false;
              closing = false;
              last_rx = Unix.gettimeofday ();
              rx_start = None;
              replies = [];
            };
          Metrics.incr (Metrics.counter ss.s_metrics "served.accepts")
      | exception Unix.Unix_error _ -> ()
    end;
    List.iter
      (fun fd ->
        if fd != listen_fd && fd != ss.notify_r then
          match Hashtbl.find_opt ss.s_conns fd with
          | None -> ()
          | Some conn -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> s_close_conn ss conn
              | n ->
                  conn.last_rx <- Unix.gettimeofday ();
                  Wire.Reader.feed conn.reader (Bytes.sub_string buf 0 n);
                  pump_sframes ss conn
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  ()
              | exception Unix.Unix_error _ -> s_close_conn ss conn))
      r;
    s_scan_completions ss;
    if ss.s_interval > 0.0 then begin
      let now = s_mono ss in
      if now -. !last_frame >= ss.s_interval then begin
        last_frame := now;
        let frame = s_frame ss ~cut:true in
        Hashtbl.iter
          (fun _ c ->
            if c.subscribed && not c.closing then
              send c (Wire.Telemetry frame))
          ss.s_conns;
        s_export_prom ss
      end
    end;
    (* quiesce waiters: answered only once every submission, local or
       cross-shard, has reported through the router *)
    if Shard_service.pending ss.svc = 0 then
      Hashtbl.iter
        (fun _ conn ->
          if conn.wants_quiesce then begin
            conn.wants_quiesce <- false;
            send conn (s_quiesced ss)
          end)
        ss.s_conns;
    List.iter
      (fun fd ->
        match Hashtbl.find_opt ss.s_conns fd with
        | None -> ()
        | Some conn -> (
            let pending = String.length conn.out - conn.out_off in
            if pending > 0 then
              match Unix.write_substring fd conn.out conn.out_off pending with
              | n ->
                  conn.out_off <- conn.out_off + n;
                  if conn.out_off >= String.length conn.out then begin
                    conn.sent <- conn.sent + String.length conn.out;
                    conn.out <- "";
                    conn.out_off <- 0;
                    if conn.closing then s_close_conn ss conn
                  end
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  ()
              | exception Unix.Unix_error _ -> s_close_conn ss conn))
      w;
    if read_timeout > 0.0 then begin
      let now = Unix.gettimeofday () in
      let stale =
        Hashtbl.fold
          (fun _ c acc ->
            if
              now -. c.last_rx > read_timeout
              && String.length c.out = c.out_off
            then c :: acc
            else acc)
          ss.s_conns []
      in
      List.iter (fun c -> s_close_conn ss c) stale
    end;
    if ss.s_draining && Shard_service.pending ss.svc = 0 then begin
      let flushed =
        Hashtbl.fold
          (fun _ c acc -> acc && String.length c.out = c.out_off)
          ss.s_conns true
      in
      if flushed then begin
        Hashtbl.iter (fun _ c -> try Unix.close c.fd with _ -> ()) ss.s_conns;
        Hashtbl.reset ss.s_conns;
        continue := false
      end
    end
  done

(* ----- obs plumbing (mirrors ntsim) ----- *)

type obs_format = Obs_jsonl | Obs_chrome

let obs_format_conv =
  Arg.enum [ ("jsonl", Obs_jsonl); ("chrome", Obs_chrome) ]

(* Telemetry needs only a metrics-enabled recorder: the hub ranks hot
   objects off the [runtime.refused.*] counter deltas, so the default
   recorder emits no events at all and the wait path stays as cheap as
   an unobserved run.  [--obs-out] opts into the full event stream. *)
let setup_obs metrics obs_format obs_out =
  match (obs_format, obs_out) with
  | _, None -> (Obs.create ~metrics (), fun () -> ())
  | fmt, Some path ->
      let sink =
        match Option.value ~default:Obs_jsonl fmt with
        | Obs_jsonl -> Obs_sink.jsonl_file path
        | Obs_chrome -> Chrome_trace.sink_file path
      in
      let obs = Obs.create ~metrics ~sink () in
      (obs, fun () -> Obs.close obs)

(* The sharded variant: shard [s] writes PATH.shard<s>, each with its
   own registry — worker domains must not share one.  [Shard_service]
   calls [obs_for] on the serving thread before spawning, so the
   closer list needs no lock. *)
let setup_shard_obs obs_format obs_out =
  match obs_out with
  | None -> (None, fun () -> ())
  | Some path ->
      let closers = ref [] in
      let obs_for s =
        let sink =
          let spath = Printf.sprintf "%s.shard%d" path s in
          match Option.value ~default:Obs_jsonl obs_format with
          | Obs_jsonl -> Obs_sink.jsonl_file spath
          | Obs_chrome -> Chrome_trace.sink_file spath
        in
        let obs = Obs.create ~sink () in
        closers := obs :: !closers;
        obs
      in
      (Some obs_for, fun () -> List.iter Obs.close !closers)

(* ----- command line ----- *)

let make_listen socket port =
  match (socket, port) with
  | Some path, None ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
  | None, Some p ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
      Unix.listen fd 64;
      (fd, fun () -> ())
  | _ ->
      Format.eprintf "ntserved: pass exactly one of --socket or --port@.";
      exit 2

let install_signals () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let on_term = Sys.Signal_handle (fun _ -> terminate := true) in
  Sys.set_signal Sys.sigterm on_term;
  Sys.set_signal Sys.sigint on_term;
  Sys.set_signal Sys.sigquit (Sys.Signal_handle (fun _ -> dump_signal := true))

let serve_sharded socket port backend table n_objects seed policy admission
    max_steps read_timeout obs_format obs_out telemetry_interval prom shards
    verbose =
  let table = if Check.rw_only backend then T_rw else table in
  let objects = build_objects table n_objects in
  let metrics = Metrics.create () in
  let hub = Telemetry.Hub.create ~interval_s:telemetry_interval metrics in
  let obs_for, finish_obs = setup_shard_obs obs_format obs_out in
  let notify_r, notify_w = Unix.pipe () in
  Unix.set_nonblock notify_r;
  Unix.set_nonblock notify_w;
  let notify () =
    (* Worker-side wake-up; a full pipe already guarantees a wake. *)
    try ignore (Unix.write notify_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()
  in
  let svc =
    Shard_service.start ~policy ~max_steps ~gating:admission ?obs_for ~notify
      ~shards ~seed objects
      (Check.factory_of backend)
  in
  let ss =
    {
      svc;
      s_backend = backend;
      s_objects = objects;
      s_conns = Hashtbl.create 16;
      s_metrics = metrics;
      s_hub = hub;
      s_t0 = Unix.gettimeofday ();
      s_interval = telemetry_interval;
      s_prom = prom;
      s_verbose = verbose;
      s_draining = false;
      s_open = Hashtbl.create 256;
      s_reqs = Hashtbl.create 256;
      notify_r;
    }
  in
  let listen_fd, cleanup = make_listen socket port in
  install_signals ();
  if verbose then
    Format.printf "ntserved: %s backend, %d objects, %d shards, admission %s@."
      (Check.backend_name backend)
      (List.length objects) shards
      (if admission then "on" else "off");
  run_sharded_server listen_fd ss ~read_timeout;
  Shard_service.stop ss.svc;
  Unix.close listen_fd;
  cleanup ();
  (try Unix.close notify_r with Unix.Unix_error _ -> ());
  (try Unix.close notify_w with Unix.Unix_error _ -> ());
  let r, _forest, _schema = Shard_service.finish ss.svc in
  finish_obs ();
  s_export_prom ss;
  let rt = Shard_service.router ss.svc in
  Format.printf
    "ntserved: served %d submissions over %d shards (%d cross-shard): %d \
     committed, %d aborted (%d vetoed), %d monitor alarms@."
    (Shard_router.submitted rt) shards (Shard_router.cross_count rt)
    r.Runtime.committed_top r.Runtime.aborted_top
    (s_sum (fun st -> st.Shard_engine.sh_vetoed) ss)
    (s_alarms ss);
  if verbose then
    Array.iteri
      (fun i (st : Shard_engine.stats) ->
        Format.printf
          "  shard %d: %d pieces, %d committed, %d aborted, %d vetoed, %d \
           steps@."
          i st.sh_submitted st.sh_committed st.sh_aborted st.sh_vetoed
          st.sh_steps)
      (s_stats ss);
  if s_alarms ss > 0 then exit 1

let serve_cmd socket port backend_name table n_objects seed policy admission
    max_steps burst read_timeout wal fsync_batch fsync_interval snapshot_every
    obs_format obs_out telemetry_interval audit_log prom slow_ms flight
    flight_dir gc_trace shards verbose =
  let backend =
    match Check.backend_of_name backend_name with
    | Some b when List.mem b Check.correct_backends -> b
    | Some _ ->
        Format.eprintf "ntserved: broken backends are for ntcheck only@.";
        exit 2
    | None ->
        Format.eprintf "ntserved: unknown backend %s@." backend_name;
        exit 2
  in
  if shards < 1 then begin
    Format.eprintf "ntserved: --shards must be at least 1@.";
    exit 2
  end;
  if shards > 1 then begin
    (* The sharded service has no per-shard log yet (ROADMAP), and the
       replication transform re-derives the whole physical forest per
       submission — both are single-shard features; refuse loudly
       rather than silently degrade. *)
    if wal <> None then begin
      Format.eprintf
        "ntserved: --wal requires a single shard (per-shard logging is \
         not implemented; drop --shards or --wal)@.";
      exit 2
    end;
    if backend = Check.Replication then begin
      Format.eprintf
        "ntserved: the replication backend is single-shard only (its \
         logical-to-physical transform re-derives the whole forest per \
         submission)@.";
      exit 2
    end;
    serve_sharded socket port backend table n_objects seed policy admission
      max_steps read_timeout obs_format obs_out telemetry_interval prom
      shards verbose
  end
  else begin
  if wal <> None && backend = Check.Replication then begin
    (* The log records physically transformed programs, but the
       replication transform re-derives the whole physical forest from
       the logical one — replay would not rebuild that state.  Scope
       line, not a format limit. *)
    Format.eprintf "ntserved: --wal does not support the replication backend@.";
    exit 2
  end;
  let table = if Check.rw_only backend then T_rw else table in
  let objects = build_objects table n_objects in
  let replicated = backend = Check.Replication in
  let engine_objects =
    if not replicated then objects
    else begin
      let plan =
        Replication.replicate Check.replication_config
          ~objects:(List.map fst objects) []
      in
      let schema = plan.Replication.physical_schema in
      List.map (fun x -> (x, schema.Schema.dtype_of x)) schema.Schema.objects
    end
  in
  let metrics = Metrics.create () in
  let hub =
    Telemetry.Hub.create ~interval_s:telemetry_interval metrics
  in
  let obs, finish_obs = setup_obs metrics obs_format obs_out in
  let t0 = Unix.gettimeofday () in
  (* The engine's completion hook needs the server record, which needs
     the engine; tie the knot through a cell. *)
  let post_complete = ref (fun _ _ -> ()) in
  let eng =
    Engine.create ~policy ~max_steps ~obs ~admission
      ~on_top_complete:(fun u o -> !post_complete u o)
      ~clock:(fun () -> Unix.gettimeofday () -. t0)
      ~seed engine_objects
      (match Check.factory_of backend with f -> f)
  in
  let audit = Option.map Telemetry.Audit.open_file audit_log in
  let recorder =
    if flight > 0 then Some (Stage.Recorder.create ~capacity:flight) else None
  in
  let gcmon = if gc_trace then Gcmon.start () else None in
  if gc_trace && gcmon = None && verbose then
    Format.eprintf "ntserved: runtime-events tracing unavailable@.";
  let srv =
    {
      eng;
      backend;
      objects;
      replicated;
      logical_rev = [];
      conns = Hashtbl.create 16;
      metrics;
      hub;
      audit;
      txns = Txn_id.Tbl.create 256;
      t0;
      telemetry_interval;
      slow_us = slow_ms * 1000;
      prom;
      draining = false;
      recorder;
      flight_dir;
      gcmon;
      verbose;
      gc_ctx = (None, None, -1);
      dump_seq = 0;
      last_dump = neg_infinity;
      pending_dump = None;
      dump_hold = 0;
      status = Wire.Fresh;
      wal = None;
      recovery = None;
    }
  in
  post_complete := on_complete srv;
  (match wal with
  | None -> ()
  | Some path ->
      let meta =
        Wal.Meta
          {
            seed;
            backend = Check.backend_name backend;
            policy =
              (match policy with
              | Runtime.Random_step -> "random-step"
              | Runtime.Bsp_rounds -> "bsp-rounds");
            inform = "eager";  (* the engine's default inform policy *)
            abort_prob = 0.0;
            objects =
              List.map
                (fun (x, dt) -> (Obj_id.name x, Program_io.dtype_decl dt))
                objects;
          }
      in
      init_durability srv ~path ~fsync_batch
        ~fsync_interval_s:(float_of_int fsync_interval /. 1000.)
        ~snapshot_every ~meta);
  let listen_fd, cleanup = make_listen socket port in
  install_signals ();
  if verbose then
    Format.printf "ntserved: %s backend, %d objects, admission %s@."
      (Check.backend_name backend)
      (List.length objects)
      (if admission then "on" else "off");
  run_server listen_fd srv ~read_timeout ~burst ~verbose;
  wal_shutdown srv;
  Unix.close listen_fd;
  cleanup ();
  Option.iter Gcmon.stop gcmon;
  let r = Engine.finish eng in
  finish_obs ();
  export_prom srv;
  Option.iter Telemetry.Audit.close audit;
  Format.printf
    "ntserved: served %d submissions: %d committed, %d aborted (%d vetoed, \
     %d orphaned), %d monitor alarms@."
    (Engine.submitted eng) r.Runtime.committed_top r.Runtime.aborted_top
    (Engine.vetoed eng) (Engine.orphan_aborts eng) (actionable_alarms srv);
  if actionable_alarms srv > 0 then exit 1
  end

let cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Listen on loopback TCP.")
  in
  let backend =
    Arg.(
      value & opt string "undo"
      & info [ "backend" ] ~docv:"NAME"
          ~doc:"Concurrency control: moss, commlock, undo, mvts, replication.")
  in
  let table =
    Arg.(
      value & opt table_conv T_mixed
      & info [ "types" ] ~doc:"Object table flavor (rw or mixed).")
  in
  let n_objects =
    Arg.(value & opt int 4 & info [ "objects" ] ~docv:"N" ~doc:"Object count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N") in
  let policy =
    Arg.(
      value
      & opt (enum [ ("random", Runtime.Random_step); ("bsp", Runtime.Bsp_rounds) ])
          Runtime.Random_step
      & info [ "policy" ])
  in
  let admission =
    Arg.(
      value & flag
      & info [ "no-admission" ]
          ~doc:"Disable the commit gate (the monitor still runs).")
    |> Term.app (Term.const not)
  in
  let max_steps =
    Arg.(value & opt int 100_000_000 & info [ "max-steps" ] ~docv:"N")
  in
  let burst =
    Arg.(
      value & opt int 256
      & info [ "burst" ] ~docv:"N"
          ~doc:"Max engine steps per select-loop turn.")
  in
  let read_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "read-timeout" ] ~docv:"SECONDS"
          ~doc:"Drop connections idle this long (0 disables).")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"PATH"
          ~doc:
            "Write-ahead log: every accepted submission, orphan kill \
             and engine-step run is logged before acknowledgement, and \
             on restart the log (plus PATH.snap, when snapshots are \
             on) is replayed to rebuild the exact pre-crash engine, \
             monitor and admission state.")
  in
  let fsync_batch =
    Arg.(
      value & opt int 1
      & info [ "fsync-batch" ] ~docv:"N"
          ~doc:
            "Group commit: fsync once per N appended records (1 = \
             every record, the unbatched baseline; 0 = never by count, \
             rely on --fsync-interval and shutdown).")
  in
  let fsync_interval =
    Arg.(
      value & opt int 0
      & info [ "fsync-interval" ] ~docv:"MS"
          ~doc:
            "Also fsync when dirty records are this old, milliseconds \
             (0 disables the timer).")
  in
  let snapshot_every =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Write a snapshot and rotate the log every N appended \
             records (0 disables snapshots).")
  in
  let obs_format =
    Arg.(value & opt (some obs_format_conv) None & info [ "obs-format" ])
  in
  let obs_out =
    Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"FILE")
  in
  let telemetry_interval =
    Arg.(
      value & opt float 1.0
      & info [ "telemetry-interval" ] ~docv:"SECONDS"
          ~doc:
            "Window-rotation and Telemetry-push period (0 disables \
             periodic frames; Subscribe still answers immediately).")
  in
  let audit_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per admission veto (with the cycle \
             witness chain) and per slow request.")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Rewrite FILE atomically with the Prometheus text rendering \
             of the metrics registry at every telemetry interval.")
  in
  let slow_ms =
    Arg.(
      value & opt int 250
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Audit-log submissions slower than this, milliseconds.")
  in
  let flight =
    Arg.(
      value & opt int 4096
      & info [ "flight" ] ~docv:"SPANS"
          ~doc:
            "Flight-recorder capacity: the last SPANS stage spans are \
             kept in a ring and dumped on anomalies (veto, slow \
             request, reader poisoning), on SIGQUIT, and on the Dump \
             wire request.  0 disables the recorder.")
  in
  let flight_dir =
    Arg.(
      value & opt string "."
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:"Where flight dumps (JSONL + Chrome trace) are written.")
  in
  let gc_trace =
    Arg.(
      value & flag
      & info [ "no-gc-trace" ]
          ~doc:
            "Disable GC-pause attribution (runtime-events subscription \
             on OCaml 5, collection-count fallback otherwise).")
    |> Term.app (Term.const not)
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serve from N shard engines, one per domain (OCaml 5; system \
             threads on 4.x), with cross-shard commits gated by the \
             spine.  N=1 is the classic single-engine loop; N>1 \
             disables --wal, the flight recorder and the audit log.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ]) in
  let term =
    Term.(
      const serve_cmd $ socket $ port $ backend $ table $ n_objects $ seed
      $ policy $ admission $ max_steps $ burst $ read_timeout $ wal
      $ fsync_batch $ fsync_interval $ snapshot_every $ obs_format $ obs_out
      $ telemetry_interval $ audit_log $ prom $ slow_ms $ flight $ flight_dir
      $ gc_trace $ shards $ verbose)
  in
  Cmd.v
    (Cmd.info "ntserved" ~version:Version.string
       ~doc:
         "Serve nested transactions over a socket with online \
          serialization-graph admission control.")
    term

let () = exit (Cmd.eval cmd)
