(* ntsim: run nested-transaction workloads under a chosen protocol and
   verify them with the serialization-graph checker.

   Examples:
     ntsim --workload rw --protocol moss --seed 3 --check
     ntsim --workload counters --protocol undo --n-top 16 --theta 0.9
     ntsim --workload banking --protocol undo --abort-prob 0.05 --trace
     ntsim --workload rw --protocol no-control --check   # watch it fail *)

open Core
open Cmdliner

type workload = Rw | Counters | Mixed | Banking | Queue

type protocol =
  | P_moss
  | P_undo
  | P_commlock
  | P_mvts
  | P_serial
  | P_no_control
  | P_unsafe_read
  | P_no_undo

let workload_conv =
  Arg.enum
    [
      ("rw", Rw); ("counters", Counters); ("mixed", Mixed);
      ("banking", Banking); ("queue", Queue);
    ]

let protocol_conv =
  Arg.enum
    [
      ("moss", P_moss); ("undo", P_undo); ("commlock", P_commlock);
      ("mvts", P_mvts);
      ("serial", P_serial);
      ("no-control", P_no_control); ("unsafe-read", P_unsafe_read);
      ("no-undo", P_no_undo);
    ]

let policy_conv =
  Arg.enum [ ("random", Runtime.Random_step); ("bsp", Runtime.Bsp_rounds) ]

type obs_format = Obs_jsonl | Obs_chrome | Obs_table

let obs_format_conv =
  Arg.enum
    [ ("jsonl", Obs_jsonl); ("chrome", Obs_chrome); ("table", Obs_table) ]

(* Build the recorder selected by --obs-out/--obs-format/--report, plus
   the finalizer that closes the sink and dumps the metrics registry
   (and, under --report, the in-process contention profile fed through
   a teed sink). *)
let setup_obs ?(report = false) obs_format obs_out =
  match (obs_format, obs_out, report) with
  | None, None, false -> (Obs.null, fun () -> ())
  | _ ->
      let fmt = Option.value ~default:Obs_table obs_format in
      let base_sink =
        match (fmt, obs_out) with
        | Obs_jsonl, Some path -> Obs_sink.jsonl_file path
        | Obs_chrome, Some path -> Chrome_trace.sink_file path
        | (Obs_jsonl | Obs_chrome), None ->
            Format.eprintf
              "--obs-format jsonl/chrome requires --obs-out FILE@.";
            exit 2
        | Obs_table, _ -> Obs_sink.null
      in
      let profile = if report then Some (Profile.create ()) else None in
      let sink =
        match profile with
        | None -> base_sink
        | Some p ->
            if base_sink == Obs_sink.null then Profile.sink p
            else Obs_sink.tee base_sink (Profile.sink p)
      in
      let obs = Obs.create ~sink () in
      let finish () =
        Obs.close obs;
        (match (fmt, obs_out) with
        | Obs_table, Some path ->
            let oc = open_out path in
            let f = Format.formatter_of_out_channel oc in
            Format.fprintf f "%a@." Metrics.pp (Obs.metrics obs);
            close_out oc;
            Format.printf "@.metrics written to %s@." path
        | Obs_jsonl, Some path ->
            Format.printf "@.telemetry streamed to %s (jsonl)@." path
        | Obs_chrome, Some path ->
            Format.printf
              "@.trace written to %s (load it in chrome://tracing or \
               https://ui.perfetto.dev)@."
              path
        | _, None -> ());
        (match profile with
        | Some p ->
            Format.printf "@.contention profile:@.%a" (Profile.report ~top:10)
              p
        | None ->
            Format.printf "@.observability metrics:@.%a@." Metrics.pp
              (Obs.metrics obs))
      in
      (obs, finish)

let build_workload workload ~seed ~n_top ~depth ~fanout ~n_objects ~theta
    ~read_ratio =
  let profile =
    { Gen.default with n_top; depth; fanout; n_objects; theta; read_ratio }
  in
  match workload with
  | Rw -> Gen.forest_and_schema Gen.registers ~seed profile
  | Counters -> Gen.forest_and_schema Gen.counters ~seed profile
  | Mixed -> Gen.forest_and_schema Gen.mixed ~seed profile
  | Banking ->
      Scenario.banking ~n_accounts:n_objects ~n_transfers:n_top ~seed
  | Queue ->
      Scenario.queue_producers_consumers ~n_producers:(n_top / 2)
        ~n_consumers:(n_top - (n_top / 2))
        ~seed

let factory_of = function
  | P_moss -> Some Moss_object.factory
  | P_undo -> Some Undo_object.factory
  | P_commlock -> Some Commlock_object.factory
  | P_mvts -> Some Mvts_object.factory
  | P_no_control -> Some Broken.no_control
  | P_unsafe_read -> Some Broken.unsafe_read
  | P_no_undo -> Some Broken.no_undo
  | P_serial -> None

let run_cmd workload protocol seed n_top depth fanout n_objects theta
    read_ratio abort_prob policy check print_trace save_path dot_path
    load_path monitor batch report program_path obs_format obs_out =
  let obs, finish_obs = setup_obs ~report obs_format obs_out in
  let forest, schema =
    match program_path with
    | Some path -> (
        match Bundle.load_program path with
        | Ok fs ->
            Format.printf "workload loaded from %s@." path;
            fs
        | Error e ->
            Format.eprintf "cannot load workload: %s@." e;
            exit 2)
    | None ->
        build_workload workload ~seed ~n_top ~depth ~fanout ~n_objects ~theta
          ~read_ratio
  in
  let trace =
    match load_path with
    | Some path -> (
        match Trace_io.load path with
        | Ok tr ->
            Format.printf "loaded %d events from %s@." (Trace.length tr) path;
            Array.iter (Obs.on_action obs) tr;
            tr
        | Error e ->
            Format.eprintf "cannot load %s: %s@." path e;
            exit 2)
    | None ->
    match factory_of protocol with
    | None ->
        let tr = Serial_exec.run schema forest in
        Format.printf "serial execution: %d events@." (Trace.length tr);
        Array.iter (Obs.on_action obs) tr;
        tr
    | Some factory ->
        let r =
          Runtime.run ~policy ~abort_prob ~obs ~seed schema factory forest
        in
        Format.printf
          "events %d  rounds %d  blocked %d  deadlock-aborts %d  \
           injected-aborts %d@."
          r.Runtime.stats.actions r.Runtime.stats.rounds
          r.Runtime.stats.blocked_attempts r.Runtime.stats.deadlock_aborts
          r.Runtime.stats.injected_aborts;
        Format.printf "top-level: %d committed, %d aborted%s@."
          r.Runtime.committed_top r.Runtime.aborted_top
          (if r.Runtime.stats.truncated then "  (TRUNCATED)" else "");
        r.Runtime.trace
  in
  Format.printf "%a@." Trace_stats.pp (Trace_stats.of_trace trace);
  if print_trace then Format.printf "@.%a@." Trace.pp trace;
  (match save_path with
  | Some path ->
      Trace_io.save path trace;
      Format.printf "trace saved to %s@." path
  | None -> ());
  let mon =
    if monitor then begin
      let m = Monitor.create schema in
      let alarms =
        match batch with
        | None -> Monitor.feed_trace ~obs m trace
        | Some n ->
            (* Feed in coalesced bursts: each chunk's edge insertions
               are deduplicated and run through the incremental
               detector once, at the chunk boundary.  Alarm indices
               are the chunk's starting event. *)
            let n = max 1 n in
            let len = Array.length trace in
            let acc = ref [] in
            let i = ref 0 in
            while !i < len do
              let stop = min len (!i + n) in
              let chunk =
                Array.to_list (Array.sub trace !i (stop - !i))
              in
              List.iter
                (fun a -> acc := (!i, a) :: !acc)
                (Monitor.feed_batch ~obs m chunk);
              i := stop
            done;
            List.rev !acc
      in
      (match alarms with
      | [] -> Format.printf "online monitor: no alarms@."
      | alarms ->
          List.iter
            (fun (i, a) ->
              match a with
              | Monitor.Cycle c ->
                  Format.printf "online monitor: event %d closed a cycle: %s@."
                    i
                    (String.concat " -> " (List.map Txn_id.to_string c));
                  Format.printf "%s" (Monitor.explain_cycle m c)
              | Monitor.Inappropriate x ->
                  Format.printf
                    "online monitor: event %d made %s's returns impossible@." i
                    (Obj_id.name x))
            alarms);
      let c = Monitor.counters m in
      Format.printf
        "online monitor: %d feeds, %d operations, %d edges, %d cycle + %d \
         inappropriate alarms@."
        c.Monitor.feeds c.Monitor.operations c.Monitor.edges
        c.Monitor.cycle_alarms c.Monitor.inappropriate_alarms;
      (match Monitor.witness_order m with
      | Some order ->
          Format.printf
            "online monitor: witness sibling order maintained incrementally \
             (%d parents, %d order repairs)@."
            (List.length (Sibling_order.parents order))
            (Graph.reorders (Monitor.graph m))
      | None ->
          Format.printf
            "online monitor: SG cyclic, no witness order exists@.");
      Some m
    end
    else None
  in
  (match dot_path with
  | Some path ->
      (* With the monitor on, render its graph: edges carry witness
         labels and the first detected cycle is highlighted. *)
      let dot =
        match mon with
        | Some m -> Monitor.dot m
        | None -> Dot.of_trace schema trace
      in
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Format.printf "serialization graph written to %s (graphviz)@." path
  | None -> ());
  (match Simple_db.well_formed schema.Schema.sys trace with
  | Ok () -> ()
  | Error v ->
      Format.printf "WELL-FORMEDNESS VIOLATION: %a@." Simple_db.pp_violation v);
  if check then begin
    match protocol with
    | P_mvts ->
        (* Multiversion behaviors serialize by pseudotime, not by
           completion: certify with Theorem 2 directly. *)
        let order = Sibling_order.index_order (Trace.serial trace) in
        (match Theorem2.check schema order trace with
        | Ok () ->
            Format.printf
              "@.Theorem 2 with the pseudotime order: serially correct for \
               T0@."
        | Error f ->
            Format.printf "@.Theorem 2 FAILED: %a@." Theorem2.pp_failure f;
            exit 1)
    | _ ->
        let verdict = Checker.check schema trace in
        Format.printf "@.%a@." Checker.pp_verdict verdict;
        if not verdict.Checker.serially_correct then begin
          Format.printf "@.%s@." (Checker.explain schema trace);
          exit 1
        end
  end;
  let finals = Serial_exec.final_states schema trace in
  Format.printf "@.final object states (committed projection):@.";
  List.iter
    (fun (x, v) ->
      Format.printf "  %-8s %s@." (Obj_id.name x) (Value.to_string v))
    finals;
  finish_obs ()

let cmd =
  let workload =
    Arg.(
      value
      & opt workload_conv Rw
      & info [ "w"; "workload" ] ~doc:"Workload: rw, counters, mixed, banking, queue.")
  in
  let protocol =
    Arg.(
      value
      & opt protocol_conv P_moss
      & info [ "p"; "protocol" ]
          ~doc:
            "Protocol: moss, undo, commlock, mvts, serial, no-control, \
             unsafe-read, no-undo.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Random seed.")
  in
  let n_top =
    Arg.(value & opt int 8 & info [ "n-top" ] ~doc:"Top-level transactions.")
  in
  let depth =
    Arg.(value & opt int 2 & info [ "depth" ] ~doc:"Max nesting depth.")
  in
  let fanout =
    Arg.(value & opt int 3 & info [ "fanout" ] ~doc:"Max children per node.")
  in
  let n_objects =
    Arg.(value & opt int 4 & info [ "objects" ] ~doc:"Number of objects.")
  in
  let theta =
    Arg.(value & opt float 0.0 & info [ "theta" ] ~doc:"Zipf skew (0 = uniform).")
  in
  let read_ratio =
    Arg.(value & opt float 0.5 & info [ "read-ratio" ] ~doc:"Read fraction.")
  in
  let abort_prob =
    Arg.(
      value & opt float 0.0
      & info [ "abort-prob" ] ~doc:"Per-step abort injection probability.")
  in
  let policy =
    Arg.(
      value
      & opt policy_conv Runtime.Random_step
      & info [ "policy" ] ~doc:"Scheduling policy: random or bsp.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "c"; "check" ]
          ~doc:"Run the Theorem 8/19 serialization-graph checker.")
  in
  let print_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full trace.")
  in
  let save_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Save the trace to a file.")
  in
  let dot_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write the serialization graph in Graphviz DOT format.")
  in
  let load_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:
            "Check a previously saved trace instead of executing (the \
             workload options must still describe the schema it was \
             produced under).")
  in
  let program_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "program" ] ~docv:"FILE"
          ~doc:
            "Run a hand-written workload file ((objects ...) and (txn ...) \
             forms; see Program_io) instead of a generated one.")
  in
  let monitor =
    Arg.(
      value & flag
      & info [ "monitor" ]
          ~doc:"Feed the behavior through the online monitor and report \
                alarms with their event indices.")
  in
  let batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "With $(b,--monitor): feed the trace in bursts of $(docv) \
             events via Monitor.feed_batch, coalescing each burst's edge \
             insertions (deduplicated, one incremental-detector pass per \
             distinct edge at the burst boundary).  Verdict-equivalent to \
             event-by-event feeding; reported alarm indices are burst \
             starts.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Accumulate an in-process contention profile (same pipeline as \
             $(b,ntprof) over a JSONL trace) and print it at the end of the \
             run.")
  in
  let obs_format =
    Arg.(
      value
      & opt (some obs_format_conv) None
      & info [ "obs-format" ]
          ~doc:
            "Telemetry output format: $(b,jsonl) (one event per line, \
             streamed), $(b,chrome) (Chrome trace-event JSON for \
             chrome://tracing / Perfetto), or $(b,table) (metrics \
             registry dump; the default when only --obs-out is given).")
  in
  let obs_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-out" ] ~docv:"FILE"
          ~doc:
            "Write telemetry to $(docv).  Required for jsonl/chrome \
             formats; optional for table (stdout otherwise).")
  in
  let term =
    Term.(
      const run_cmd $ workload $ protocol $ seed $ n_top $ depth $ fanout
      $ n_objects $ theta $ read_ratio $ abort_prob $ policy $ check
      $ print_trace $ save_path $ dot_path $ load_path $ monitor $ batch
      $ report $ program_path $ obs_format $ obs_out)
  in
  Cmd.v
    (Cmd.info "ntsim" ~version:Version.string
       ~doc:
         "Simulate nested transaction systems and verify serial correctness \
          with the Fekete-Lynch-Weihl serialization-graph construction.")
    term

let () = exit (Cmd.eval cmd)
