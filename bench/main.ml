(* The experiment harness: one table per experiment E1-E8 of DESIGN.md
   (the paper, a theory paper, has no tables or figures of its own; see
   EXPERIMENTS.md for the mapping from each experiment to the paper
   claim it exercises), plus bechamel micro-benchmarks of the core
   operations.

   Run all:        dune exec bench/main.exe
   Run a subset:   dune exec bench/main.exe -- e3 e5 micro *)

open Core

let seeds n = List.init n (fun i -> (i * 101) + 3)

let run ?(abort_prob = 0.0) ~seed schema factory forest =
  Runtime.run ~policy:Runtime.Bsp_rounds ~abort_prob ~seed schema factory
    forest

let fi = float_of_int

(* Every experiment prints its table as it finishes; with [--json FILE]
   the same tables are also collected and dumped as one JSON array at
   exit, so plots and dashboards need not scrape the text output. *)
let emitted : Table.t list ref = ref []

let report t =
  emitted := t :: !emitted;
  Table.print t

(* ------------------------------------------------------------------ *)
(* E1: concurrency of Moss' locking vs the serial scheduler.           *)

let e1 () =
  let t =
    Table.create ~title:"E1: Moss locking vs serial scheduler (registers)"
      ~columns:
        [ "n_top"; "serial_events"; "moss_rounds"; "speedup"; "committed";
          "correct" ]
  in
  List.iter
    (fun n_top ->
      let profile =
        { Gen.default with n_top; depth = 2; fanout = 3; n_objects = 8 }
      in
      let serial_events = ref [] and rounds = ref [] and committed = ref [] in
      let all_correct = ref true in
      List.iter
        (fun seed ->
          let forest, schema = Gen.forest_and_schema Gen.registers ~seed profile in
          let st = Serial_exec.run schema forest in
          serial_events := fi (Trace.length st) :: !serial_events;
          let r = run ~seed schema Moss_object.factory forest in
          rounds := fi r.Runtime.stats.rounds :: !rounds;
          committed := fi r.Runtime.committed_top :: !committed;
          if not (Checker.serially_correct schema r.Runtime.trace) then
            all_correct := false)
        (seeds 5);
      let se = Stats.mean !serial_events and ro = Stats.mean !rounds in
      Table.add_row t
        [
          Table.cell_i n_top;
          Table.cell_f se;
          Table.cell_f ro;
          Table.cell_f (Stats.ratio se ro);
          Table.cell_f (Stats.mean !committed);
          string_of_bool !all_correct;
        ])
    [ 4; 8; 16; 32; 64 ];
  report t

(* ------------------------------------------------------------------ *)
(* E2: blocking and aborts under contention, locking vs undo logging.  *)

let e2 () =
  let t =
    Table.create
      ~title:"E2: contention behavior (hot counters; undo vs r/w locking)"
      ~columns:
        [ "theta"; "objects"; "undo_blocked"; "undo_dlk"; "moss_blocked";
          "moss_dlk" ]
  in
  List.iter
    (fun theta ->
      List.iter
        (fun n_counters ->
          let ub = ref [] and ud = ref [] and mb = ref [] and md = ref [] in
          List.iter
            (fun seed ->
              let forest, schema =
                Scenario.hotspot_counter ~n_txns:16 ~n_counters ~theta ~seed
              in
              let r = run ~seed schema Undo_object.factory forest in
              ub := fi r.Runtime.stats.blocked_attempts :: !ub;
              ud := fi r.Runtime.stats.deadlock_aborts :: !ud;
              let forest, schema =
                Scenario.rw_equivalent_counter ~n_txns:16 ~n_counters ~theta
                  ~seed
              in
              let r = run ~seed schema Moss_object.factory forest in
              mb := fi r.Runtime.stats.blocked_attempts :: !mb;
              md := fi r.Runtime.stats.deadlock_aborts :: !md)
            (seeds 5);
          Table.add_row t
            [
              Table.cell_f theta;
              Table.cell_i n_counters;
              Table.cell_f (Stats.mean !ub);
              Table.cell_f (Stats.mean !ud);
              Table.cell_f (Stats.mean !mb);
              Table.cell_f (Stats.mean !md);
            ])
        [ 1; 4; 16 ])
    [ 0.0; 0.5; 0.9 ];
  report t

(* ------------------------------------------------------------------ *)
(* E3: type-specific commutativity: throughput of the same logical     *)
(* workload as counters (undo) vs read/write registers (locking).      *)

let e3 () =
  let t =
    Table.create
      ~title:"E3: commuting increments (undo) vs read-modify-write (locking)"
      ~columns:
        [ "n_txns"; "undo_rounds"; "moss_rounds"; "undo_tput"; "moss_tput";
          "undo/moss" ]
  in
  List.iter
    (fun n_txns ->
      let ur = ref [] and mr = ref [] and ut = ref [] and mt = ref [] in
      List.iter
        (fun seed ->
          let forest, schema =
            Scenario.hotspot_counter ~n_txns ~n_counters:1 ~theta:0.0 ~seed
          in
          let r = run ~seed schema Undo_object.factory forest in
          ur := fi r.Runtime.stats.rounds :: !ur;
          ut :=
            Stats.ratio (fi r.Runtime.committed_top) (fi r.Runtime.stats.rounds)
            :: !ut;
          let forest, schema =
            Scenario.rw_equivalent_counter ~n_txns ~n_counters:1 ~theta:0.0
              ~seed
          in
          let r = run ~seed schema Moss_object.factory forest in
          mr := fi r.Runtime.stats.rounds :: !mr;
          mt :=
            Stats.ratio (fi r.Runtime.committed_top) (fi r.Runtime.stats.rounds)
            :: !mt)
        (seeds 5);
      Table.add_row t
        [
          Table.cell_i n_txns;
          Table.cell_f (Stats.mean !ur);
          Table.cell_f (Stats.mean !mr);
          Table.cell_f (Stats.mean !ut);
          Table.cell_f (Stats.mean !mt);
          Table.cell_f (Stats.ratio (Stats.mean !ut) (Stats.mean !mt));
        ])
    [ 4; 8; 16; 32 ];
  report t

(* ------------------------------------------------------------------ *)
(* E4: agreement of the nested construction with the classical flat    *)
(* conflict graph on depth-one workloads.                              *)

let e4 () =
  let t =
    Table.create
      ~title:"E4: nested SG vs classical conflict graph (flat workloads)"
      ~columns:
        [ "protocol"; "runs"; "both_accept"; "both_reject"; "nested_only_rej";
          "classical_only_rej" ]
  in
  let experiment name factory n =
    let ba = ref 0 and br = ref 0 and nr = ref 0 and cr = ref 0 in
    for seed = 1 to n do
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 8; depth = 1; n_objects = 2;
            read_ratio = 0.4 }
      in
      let r = run ~seed schema factory forest in
      let nested = Checker.serially_correct schema r.Runtime.trace in
      let classical =
        Flat_sg.is_serializable (History.of_trace schema r.Runtime.trace)
      in
      match (nested, classical) with
      | true, true -> incr ba
      | false, false -> incr br
      | false, true -> incr nr
      | true, false -> incr cr
    done;
    Table.add_row t
      [
        name; Table.cell_i n; Table.cell_i !ba; Table.cell_i !br;
        Table.cell_i !nr; Table.cell_i !cr;
      ]
  in
  experiment "moss" Moss_object.factory 40;
  experiment "no_control" Broken.no_control 40;
  report t

(* ------------------------------------------------------------------ *)
(* E5: cost of the construction as traces grow.                        *)

let e5 () =
  let t =
    Table.create ~title:"E5: checker cost vs trace length"
      ~columns:
        [ "events"; "sg_build_ms"; "verdict_ms"; "monitor_ms"; "sg_edges";
          "correct" ]
  in
  List.iter
    (fun n_top ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed:11
          { Gen.default with n_top; depth = 2; n_objects = 8 }
      in
      let r = run ~seed:11 schema Moss_object.factory forest in
      let beta = Trace.serial r.Runtime.trace in
      let time f =
        let t0 = Sys.time () in
        let x = f () in
        (x, (Sys.time () -. t0) *. 1000.0)
      in
      let g, t_build = time (fun () -> Sg.build Sg.Access_level schema beta) in
      let v, t_verdict = time (fun () -> Checker.check schema r.Runtime.trace) in
      let alarms, t_monitor =
        time (fun () ->
            let m = Monitor.create schema in
            Monitor.feed_trace m r.Runtime.trace)
      in
      Table.add_row t
        [
          Table.cell_i (Trace.length r.Runtime.trace);
          Table.cell_f t_build;
          Table.cell_f t_verdict;
          Table.cell_f t_monitor;
          Table.cell_i (Graph.n_edges g);
          string_of_bool (v.Checker.serially_correct && alarms = []);
        ])
    [ 4; 8; 16; 32; 64; 128 ];
  report t

(* ------------------------------------------------------------------ *)
(* E6: insensitivity to tree shape.                                    *)

let e6 () =
  let t =
    Table.create ~title:"E6: nesting depth/fanout sweep (Moss, registers)"
      ~columns:
        [ "depth"; "fanout"; "accesses"; "rounds"; "dlk_aborts"; "correct" ]
  in
  List.iter
    (fun depth ->
      List.iter
        (fun fanout ->
          let acc = ref [] and ro = ref [] and dl = ref [] in
          let all_correct = ref true in
          List.iter
            (fun seed ->
              let forest, schema =
                Gen.forest_and_schema Gen.registers ~seed
                  { Gen.default with n_top = 6; depth; fanout; n_objects = 4 }
              in
              let n_acc =
                List.fold_left
                  (fun n p -> n + List.length (Program.accesses p))
                  0 forest
              in
              acc := fi n_acc :: !acc;
              let r = run ~seed schema Moss_object.factory forest in
              ro := fi r.Runtime.stats.rounds :: !ro;
              dl := fi r.Runtime.stats.deadlock_aborts :: !dl;
              if not (Checker.serially_correct schema r.Runtime.trace) then
                all_correct := false)
            (seeds 4);
          Table.add_row t
            [
              Table.cell_i depth;
              Table.cell_i fanout;
              Table.cell_f (Stats.mean !acc);
              Table.cell_f (Stats.mean !ro);
              Table.cell_f (Stats.mean !dl);
              string_of_bool !all_correct;
            ])
        [ 1; 2; 4 ])
    [ 1; 2; 3; 4 ];
  report t

(* ------------------------------------------------------------------ *)
(* E7: discriminating power: detection of broken protocols.            *)

let e7 () =
  let t =
    Table.create ~title:"E7: detection rate of broken protocols"
      ~columns:[ "protocol"; "contention"; "aborts"; "rejected"; "of" ]
  in
  let case name factory ~hot ~abort_prob =
    let n = 30 in
    let rejected = ref 0 in
    for seed = 1 to n do
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed
          { Gen.default with n_top = 8; depth = 1;
            n_objects = (if hot then 1 else 8); read_ratio = 0.4 }
      in
      let r = run ~abort_prob ~seed schema factory forest in
      if not (Checker.serially_correct schema r.Runtime.trace) then
        incr rejected
    done;
    Table.add_row t
      [
        name;
        (if hot then "high" else "low");
        (if abort_prob > 0.0 then "yes" else "no");
        Table.cell_i !rejected;
        Table.cell_i n;
      ]
  in
  case "no_control" Broken.no_control ~hot:true ~abort_prob:0.0;
  case "no_control" Broken.no_control ~hot:false ~abort_prob:0.0;
  case "no_control" Broken.no_control ~hot:true ~abort_prob:0.1;
  case "unsafe_read" Broken.unsafe_read ~hot:true ~abort_prob:0.1;
  case "unsafe_read" Broken.unsafe_read ~hot:true ~abort_prob:0.0;
  case "no_undo" Broken.no_undo ~hot:true ~abort_prob:0.1;
  case "moss (control)" Moss_object.factory ~hot:true ~abort_prob:0.1;
  report t

(* ------------------------------------------------------------------ *)
(* E8: sufficiency, not necessity: access-level cycles on behaviors    *)
(* whose operation-level graph is acyclic and provably correct.        *)

let e8 () =
  let t =
    Table.create
      ~title:
        "E8: Section-4 (access-level) vs Section-6 (operation-level) graphs \
         on same-value-write workloads under undo logging"
      ~columns:
        [ "runs"; "acc_cyclic"; "op_cyclic"; "acc_cyc&op_acyc";
          "op_correct" ]
  in
  let n = 40 in
  let acc_cyc = ref 0 and op_cyc = ref 0 and gap = ref 0 and ok = ref 0 in
  for seed = 1 to n do
    (* All writes store the same value: distinct writers commute at the
       operation level but conflict at the access level. *)
    let rng = Rng.create seed in
    let x = Obj_id.make "x" in
    let forest =
      List.init 8 (fun _ ->
          Program.seq
            (List.init
               (1 + Rng.int rng 2)
               (fun _ ->
                 if Rng.int rng 4 = 0 then Program.access x Datatype.Read
                 else Program.access x (Datatype.Write (Value.Int 1)))))
    in
    let schema =
      Program.schema_of ~objects:[ (x, Register.make ~init:(Value.Int 1) ()) ]
        forest
    in
    let r = run ~seed schema Undo_object.factory forest in
    let beta = Trace.serial r.Runtime.trace in
    let g_acc = Sg.build Sg.Access_level schema beta in
    let g_op = Sg.build Sg.Operation_level schema beta in
    let ca = not (Graph.is_acyclic g_acc) in
    let co = not (Graph.is_acyclic g_op) in
    if ca then incr acc_cyc;
    if co then incr op_cyc;
    if ca && not co then incr gap;
    if Checker.serially_correct ~mode:Sg.Operation_level schema r.Runtime.trace
    then incr ok
  done;
  Table.add_row t
    [
      Table.cell_i n; Table.cell_i !acc_cyc; Table.cell_i !op_cyc;
      Table.cell_i !gap; Table.cell_i !ok;
    ];
  report t


(* ------------------------------------------------------------------ *)
(* E9: the boundary of the SG technique: multiversion timestamp        *)
(* behaviors are certified by Theorem 2 with the pseudotime order,     *)
(* while their serialization graphs can be cyclic and their returns    *)
(* violate the update-in-place hypothesis.                             *)

let e9 () =
  let t =
    Table.create
      ~title:
        "E9: MVTS vs the SG technique (Theorem 2 with pseudotime order)"
      ~columns:
        [ "runs"; "thm2_certified"; "sg_cyclic"; "not_appropriate";
          "thm8_applicable" ]
  in
  let n = 30 in
  let certified = ref 0 and cyclic = ref 0 and inappropriate = ref 0
  and thm8 = ref 0 in
  for seed = 1 to n do
    let forest, schema =
      Gen.forest_and_schema Gen.registers ~seed
        { Gen.default with n_top = 6; depth = 2; n_objects = 2 }
    in
    let r = run ~seed schema Mvts_object.factory forest in
    let beta = Trace.serial r.Runtime.trace in
    let order = Sibling_order.index_order beta in
    if Theorem2.holds schema order r.Runtime.trace then incr certified;
    let g = Sg.build Sg.Access_level schema beta in
    let acyclic = Graph.is_acyclic g in
    if not acyclic then incr cyclic;
    let appr = Return_values.appropriate_general schema beta in
    if not appr then incr inappropriate;
    if acyclic && appr then incr thm8
  done;
  Table.add_row t
    [
      Table.cell_i n; Table.cell_i !certified; Table.cell_i !cyclic;
      Table.cell_i !inappropriate; Table.cell_i !thm8;
    ];
  report t


(* ------------------------------------------------------------------ *)
(* E10: the three correct completion-order protocols side by side on   *)
(* every data-type family (M1_X only where the schema is read/write).  *)

let e10 () =
  let t =
    Table.create
      ~title:"E10: protocol comparison (BSP rounds / blocked / victim aborts)"
      ~columns:
        [ "workload"; "protocol"; "rounds"; "blocked"; "dlk_aborts";
          "committed"; "correct" ]
  in
  let protocols =
    [
      ("moss", Some Moss_object.factory);
      ("commlock", Some Commlock_object.factory);
      ("undo", Some Undo_object.factory);
    ]
  in
  let workloads =
    [
      ("registers", Gen.registers, true);
      ("counters", Gen.counters, false);
      ("mixed", Gen.mixed, false);
    ]
  in
  List.iter
    (fun (wname, gen, rw_ok) ->
      List.iter
        (fun (pname, factory) ->
          match factory with
          | Some factory when rw_ok || pname <> "moss" ->
              let ro = ref [] and bl = ref [] and dl = ref [] and co = ref [] in
              let all_correct = ref true in
              List.iter
                (fun seed ->
                  let forest, schema =
                    Gen.forest_and_schema gen ~seed
                      { Gen.default with n_top = 10; depth = 2; n_objects = 3 }
                  in
                  let r = run ~seed schema factory forest in
                  ro := fi r.Runtime.stats.rounds :: !ro;
                  bl := fi r.Runtime.stats.blocked_attempts :: !bl;
                  dl := fi r.Runtime.stats.deadlock_aborts :: !dl;
                  co := fi r.Runtime.committed_top :: !co;
                  if not (Checker.serially_correct schema r.Runtime.trace) then
                    all_correct := false)
                (seeds 5);
              Table.add_row t
                [
                  wname; pname;
                  Table.cell_f (Stats.mean !ro);
                  Table.cell_f (Stats.mean !bl);
                  Table.cell_f (Stats.mean !dl);
                  Table.cell_f (Stats.mean !co);
                  string_of_bool !all_correct;
                ]
          | _ -> ())
        protocols)
    workloads;
  report t


(* ------------------------------------------------------------------ *)
(* E11: quorum replication — one-copy correctness vs quorum choice     *)
(* (the paper's companion application [6], built on the framework).    *)

let e11 () =
  let t =
    Table.create
      ~title:
        "E11: quorum replication over 3 replicas (undo logging underneath)"
      ~columns:
        [ "read_q"; "write_q"; "intersecting"; "physical_ok"; "one_copy_ok";
          "of"; "events" ]
  in
  let lx = Obj_id.make "LX" and ly = Obj_id.make "LY" in
  let logical_forest seed n_txns =
    let rng = Rng.create seed in
    List.init n_txns (fun _ ->
        Program.seq
          (List.init
             (1 + Rng.int rng 3)
             (fun _ ->
               let x = if Rng.bool rng then lx else ly in
               if Rng.bool rng then Program.access x Datatype.Read
               else
                 Program.access x
                   (Datatype.Write (Value.Int (1 + Rng.int rng 9))))))
  in
  List.iter
    (fun (r, w) ->
      let config =
        { Replication.n_replicas = 3; read_quorum = r; write_quorum = w }
      in
      let n = 20 in
      let phys_ok = ref 0 and one_copy = ref 0 and events = ref [] in
      for seed = 1 to n do
        let plan =
          Replication.replicate config ~objects:[ lx; ly ]
            (logical_forest seed 6)
        in
        let res =
          Runtime.run ~policy:Runtime.Bsp_rounds ~top_comb:Program.Seq ~seed
            plan.Replication.physical_schema Undo_object.factory
            plan.Replication.physical_forest
        in
        if
          Checker.serially_correct plan.Replication.physical_schema
            res.Runtime.trace
        then incr phys_ok;
        (match Replication.check_one_copy plan res.Runtime.trace with
        | Ok () -> incr one_copy
        | Error _ -> ());
        events := fi res.Runtime.stats.actions :: !events
      done;
      Table.add_row t
        [
          Table.cell_i r; Table.cell_i w;
          string_of_bool (Replication.intersecting config);
          Table.cell_i !phys_ok; Table.cell_i !one_copy; Table.cell_i n;
          Table.cell_f (Stats.mean !events);
        ])
    [ (1, 3); (2, 2); (3, 1); (1, 1); (2, 1); (1, 2) ];
  report t


(* ------------------------------------------------------------------ *)
(* E12: ablation — sensitivity to completion-information latency.      *)
(* Lazy informs are delivered only when nothing else can move; every   *)
(* visibility- or inheritance-based protocol pays, and the cost shows  *)
(* where each protocol consults INFORM_COMMITs.                        *)

let e12 () =
  let t =
    Table.create
      ~title:"E12: eager vs lazy INFORM delivery (registers, BSP rounds)"
      ~columns:
        [ "protocol"; "informs"; "rounds"; "blocked"; "dlk_aborts"; "correct" ]
  in
  let case pname factory inform_policy iname =
    let ro = ref [] and bl = ref [] and dl = ref [] in
    let all_correct = ref true in
    List.iter
      (fun seed ->
        let forest, schema =
          Gen.forest_and_schema Gen.registers ~seed
            { Gen.default with n_top = 8; depth = 2; n_objects = 2 }
        in
        let r =
          Runtime.run ~policy:Runtime.Bsp_rounds ~inform_policy ~seed schema
            factory forest
        in
        ro := fi r.Runtime.stats.rounds :: !ro;
        bl := fi r.Runtime.stats.blocked_attempts :: !bl;
        dl := fi r.Runtime.stats.deadlock_aborts :: !dl;
        let ok =
          if pname = "mvts" then
            (* Multiversion serializes by pseudotime: Theorem 2. *)
            Theorem2.holds schema
              (Sibling_order.index_order (Trace.serial r.Runtime.trace))
              r.Runtime.trace
          else Checker.serially_correct schema r.Runtime.trace
        in
        if not ok then all_correct := false)
      (seeds 5);
    Table.add_row t
      [
        pname; iname;
        Table.cell_f (Stats.mean !ro);
        Table.cell_f (Stats.mean !bl);
        Table.cell_f (Stats.mean !dl);
        string_of_bool !all_correct;
      ]
  in
  List.iter
    (fun (pname, factory) ->
      case pname factory Runtime.Eager "eager";
      case pname factory Runtime.Lazy "lazy")
    [
      ("moss", Moss_object.factory);
      ("commlock", Commlock_object.factory);
      ("undo", Undo_object.factory);
      ("mvts", Mvts_object.factory);
    ];
  report t

(* ------------------------------------------------------------------ *)
(* obs: overhead of the observability layer.  Every run above uses the *)
(* default disabled recorder; this entry prices the alternatives by    *)
(* timing the same E1-style Moss campaign un-instrumented, with an     *)
(* enabled recorder draining to the null sink (metrics only), and with *)
(* full span events into an in-memory sink.                            *)

let obs () =
  let profile =
    { Gen.default with n_top = 32; depth = 2; fanout = 3; n_objects = 8 }
  in
  let cells =
    List.map
      (fun seed -> (seed, Gen.forest_and_schema Gen.registers ~seed profile))
      (seeds 4)
  in
  let campaign recorder =
    List.iter
      (fun (seed, (forest, schema)) ->
        ignore
          (Runtime.run ~policy:Runtime.Bsp_rounds ~obs:recorder ~seed schema
             Moss_object.factory forest))
      cells
  in
  (* Sys.time ticks at ~10 ms, far too coarse for these campaigns; use
     the wall clock, interleave the configurations within each rep, and
     judge overhead by the median of per-rep ratios against the same
     rep's baseline — pairing cancels machine-load drift, the median
     drops bursty outliers. *)
  let configs =
    [|
      (fun () -> campaign Obs.null);
      (fun () -> campaign (Obs.create ()));
      (fun () ->
        let sink, _events = Obs_sink.memory () in
        let recorder = Obs.create ~sink () in
        campaign recorder;
        Obs.close recorder);
    |]
  in
  let n_configs = Array.length configs in
  let reps = 60 in
  let samples = Array.make_matrix n_configs reps 0.0 in
  Array.iter (fun f -> f ()) configs;
  (* warm-up *)
  for r = 0 to reps - 1 do
    Array.iteri
      (fun i f ->
        (* Settle the previous sample's garbage outside the timed
           window, or each config pays for its predecessor's heap. *)
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        f ();
        samples.(i).(r) <- Unix.gettimeofday () -. t0)
      configs
  done;
  let median a =
    let b = Array.copy a in
    Array.sort compare b;
    b.(Array.length b / 2)
  in
  let ms i = median samples.(i) *. 1000.0 in
  let overhead i =
    let ratios =
      Array.init reps (fun r -> samples.(i).(r) /. samples.(0).(r))
    in
    (median ratios -. 1.0) *. 100.0
  in
  let t =
    Table.create
      ~title:
        "obs: recorder overhead on E1-style Moss runs (median of 60 paired \
         reps)"
      ~columns:[ "configuration"; "ms"; "overhead_pct" ]
  in
  let row name i =
    Table.add_row t [ name; Table.cell_f (ms i); Table.cell_f (overhead i) ]
  in
  row "uninstrumented (Obs.null)" 0;
  row "metrics only (null sink)" 1;
  row "full spans (memory sink)" 2;
  report t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core operations.                   *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* A fixed mid-size behavior to measure against. *)
  let forest, schema =
    Gen.forest_and_schema Gen.registers ~seed:21
      { Gen.default with n_top = 16; depth = 2; n_objects = 4 }
  in
  let r = run ~seed:21 schema Moss_object.factory forest in
  let beta = Trace.serial r.Runtime.trace in
  let tests =
    [
      Test.make ~name:"visible(beta,T0)"
        (Staged.stage (fun () -> Trace.visible beta ~to_:Txn_id.root));
      Test.make ~name:"clean(beta)" (Staged.stage (fun () -> Trace.clean beta));
      Test.make ~name:"conflict(beta)"
        (Staged.stage (fun () ->
             Conflict.relation Conflict.Access_level schema beta));
      Test.make ~name:"precedes(beta)"
        (Staged.stage (fun () -> Precedes.relation beta));
      Test.make ~name:"SG(beta)"
        (Staged.stage (fun () -> Sg.build Sg.Access_level schema beta));
      Test.make ~name:"full Theorem-8 verdict"
        (Staged.stage (fun () -> Checker.check schema r.Runtime.trace));
      Test.make ~name:"moss run (16 txns)"
        (Staged.stage (fun () ->
             run ~seed:21 schema Moss_object.factory forest));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"micro" ~fmt:"%s %s" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Table.create ~title:"micro: core operations (bechamel, monotonic clock)"
      ~columns:[ "operation"; "ns/run"; "r^2" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> e
        | _ -> Float.nan
      in
      let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols) in
      rows := (name, est, r2) :: !rows)
    results;
  List.iter
    (fun (name, est, r2) ->
      Table.add_row t [ name; Printf.sprintf "%.0f" est; Table.cell_f r2 ])
    (List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows);
  report t

(* ------------------------------------------------------------------ *)
(* E16: monitor cost, incremental vs recompute-per-edge detection.     *)

(* The online monitor routes every SG insertion through the
   Pearce-Kelly incremental detector ([Graph.add_edge_checked]).  This
   experiment isolates that choice: the same edge sequence is replayed
   (a) through the incremental detector and (b) through the
   pre-incremental regime — insert, then decide acyclicity with a
   from-scratch DFS ([Graph.find_cycle_scratch]), the O(E) work the
   old core repeated per edge.  [monitor_ms] is the full online
   monitor over the trace (visibility + replay + detection);
   [reorder_ops] counts how often an insertion actually disturbed the
   maintained order. *)
let e16 () =
  let t =
    Table.create ~title:"E16: monitor detection, incremental vs recompute"
      ~columns:
        [ "events"; "sg_edges"; "monitor_ms"; "inc_ms"; "scratch_ms";
          "reorder_ops" ]
  in
  List.iter
    (fun n_top ->
      let forest, schema =
        Gen.forest_and_schema Gen.registers ~seed:11
          { Gen.default with n_top; depth = 2; n_objects = 8 }
      in
      let r = run ~seed:11 schema Moss_object.factory forest in
      let time f =
        let t0 = Sys.time () in
        let x = f () in
        (x, (Sys.time () -. t0) *. 1000.0)
      in
      let m, t_monitor =
        time (fun () ->
            let m = Monitor.create schema in
            ignore (Monitor.feed_trace m r.Runtime.trace);
            m)
      in
      let edges = Graph.edges (Monitor.graph m) in
      let g_inc, t_inc =
        time (fun () ->
            let g = Graph.create () in
            List.iter
              (fun (a, b) -> ignore (Graph.add_edge_checked g a b))
              edges;
            g)
      in
      let _, t_scratch =
        time (fun () ->
            let g = Graph.create () in
            List.iter
              (fun (a, b) ->
                Graph.add_edge g a b;
                ignore (Graph.find_cycle_scratch g))
              edges)
      in
      Table.add_row t
        [
          Table.cell_i (Trace.length r.Runtime.trace);
          Table.cell_i (List.length edges);
          Table.cell_f t_monitor;
          Table.cell_f t_inc;
          Table.cell_f t_scratch;
          Table.cell_i (Graph.reorders g_inc);
        ])
    [ 4; 8; 16; 32; 64; 128 ];
  report t

(* ------------------------------------------------------------------ *)
(* E17: serving overhead — open-loop Engine vs closed-loop Runtime,    *)
(* and the wire codec's round-trip cost.                               *)

(* The same forest is executed three ways: the closed-loop
   [Runtime.run] baseline, the open-loop [Engine] with the admission
   gate off (isolating the stepper + always-on monitor), and the
   Engine with the gate on (adding the commit-time speculation).
   [wire_us] is one full client round trip through the codec —
   encode a Submit, reassemble it through a Reader, decode it, then
   the same for the State response — measured standalone. *)
let e17 () =
  let t =
    Table.create ~title:"E17: serving overhead (engine and wire)"
      ~columns:
        [ "n_top"; "actions"; "run_ms"; "engine_ms"; "gated_ms"; "vetoes";
          "wire_us" ]
  in
  let time f =
    let t0 = Sys.time () in
    let x = f () in
    (x, (Sys.time () -. t0) *. 1000.0)
  in
  let wire_us =
    let submit =
      Wire.Submit
        {
          program = "(seq (access r0 read) (access r1 (write 42)))";
          req = Some "bench-1";
        }
    in
    let state =
      Wire.State
        {
          txn = Txn_id.of_path [ 3 ];
          state = Wire.Committed "[(true, ok)]";
          req = Some "bench-1";
        }
    in
    let n = 20_000 in
    let _, ms =
      time (fun () ->
          for _ = 1 to n do
            let r = Wire.Reader.create () in
            Wire.Reader.feed r (Wire.encode_request submit);
            (match Wire.Reader.next r with
            | Ok (Some p) -> ignore (Wire.decode_request p)
            | _ -> assert false);
            Wire.Reader.feed r (Wire.encode_response state);
            match Wire.Reader.next r with
            | Ok (Some p) -> ignore (Wire.decode_response p)
            | _ -> assert false
          done)
    in
    ms *. 1000.0 /. fi n
  in
  List.iter
    (fun n_top ->
      let rng = Rng.create 11 in
      let forest, objects =
        Gen.registers rng { Gen.default with n_top; depth = 2; n_objects = 8 }
      in
      let schema = Program.schema_of ~objects forest in
      let r, t_run =
        time (fun () -> run ~seed:11 schema Moss_object.factory forest)
      in
      let open_loop ~admission () =
        let eng =
          Engine.create ~policy:Runtime.Bsp_rounds ~admission ~seed:11 objects
            Moss_object.factory
        in
        List.iter
          (fun p ->
            (match Engine.submit eng p with
            | Ok _ -> ()
            | Error e -> failwith e);
            ignore (Engine.step eng))
          forest;
        (match Engine.drain eng with
        | `Quiescent -> ()
        | _ -> failwith "engine did not quiesce");
        ignore (Engine.finish eng);
        eng
      in
      let _, t_engine = time (open_loop ~admission:false) in
      let gated, t_gated = time (open_loop ~admission:true) in
      Table.add_row t
        [
          Table.cell_i n_top;
          Table.cell_i r.Runtime.stats.actions;
          Table.cell_f t_run;
          Table.cell_f t_engine;
          Table.cell_f t_gated;
          Table.cell_i (Engine.vetoed gated);
          Table.cell_f wire_us;
        ])
    [ 8; 16; 32; 64 ];
  report t

(* ------------------------------------------------------------------ *)
(* E18: telemetry overhead and window fidelity.                        *)

(* The e17 open-loop engine run in three serving configurations:
   [bare_ms] with no recorder at all (e17's own engine columns),
   [plain_ms] with the metrics-only recorder ntserved has always run
   (the PR-5 serving baseline), and [telem_ms] with the full telemetry
   stack live on top of that — the completion hook observing
   latencies, the hub ranking hot objects off [runtime.refused.*]
   counter deltas (no event stream), and a Telemetry frame cut +
   encoded every 8 submissions (a busy subscriber).  [overhead_pct] is
   telem against plain — what this PR adds to a serving engine — and
   the acceptance bar is 3% at the largest size.  The per-8-submission
   cadence is ~1000x harsher than the 1s production interval, so at
   the small sizes (sub-2ms runs) the fixed ~50us cost of a frame cut
   dominates the percentage; the absolute cost is the same.  Window fidelity: the p99 of the
   latency histogram merged back out of the cut frames must land
   within one power-of-two bucket of the p99 of the cumulative
   histogram fed by the same hook ([bucket_dist] — this is what
   [ntload --subscribe] checks over a real socket). *)
let e18 () =
  let t =
    Table.create ~title:"E18: telemetry overhead and window fidelity"
      ~columns:
        [ "n_top"; "bare_ms"; "plain_ms"; "telem_ms"; "overhead_pct";
          "frames"; "frame_bytes"; "p99_cum_us"; "p99_win_us";
          "bucket_dist" ]
  in
  (* Interleaved best-of-N: a single Sys.time sample of a ~20ms run
     swings by 10-20% with scheduler and frequency noise, and timing
     the configurations in separate blocks lets that drift masquerade
     as overhead.  Alternating samples and keeping each side's best
     bounds every run by the same quiet-machine floor.  Each thunk
     reports its own elapsed ms, so per-run setup (registry and hub
     construction on the telemetry side) stays untimed. *)
  let time3 f g h =
    let best = Array.make 3 infinity in
    let sample i k =
      let dt = k () in
      if dt < best.(i) then best.(i) <- dt
    in
    for _ = 1 to 7 do
      sample 0 f;
      sample 1 g;
      sample 2 h
    done;
    (best.(0), best.(1), best.(2))
  in
  let timed f =
    let t0 = Sys.time () in
    f ();
    (Sys.time () -. t0) *. 1000.0
  in
  let bucket_index_of v =
    let rec go i =
      if i >= 63 || Metrics.bucket_upper i >= v then i else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun n_top ->
      let rng = Rng.create 11 in
      let forest, objects =
        Gen.registers rng { Gen.default with n_top; depth = 2; n_objects = 8 }
      in
      let drive eng =
        List.iter
          (fun p ->
            (match Engine.submit eng p with
            | Ok _ -> ()
            | Error e -> failwith e);
            ignore (Engine.step eng))
          forest;
        (match Engine.drain eng with
        | `Quiescent -> ()
        | _ -> failwith "engine did not quiesce");
        ignore (Engine.finish eng)
      in
      let frames = ref [] and frame_bytes = ref 0 in
      let last_metrics = ref (Metrics.create ()) in
      let t_bare, t_plain, t_telem =
        time3
          (fun () ->
            let eng =
              Engine.create ~policy:Runtime.Bsp_rounds ~admission:true
                ~seed:11 objects Moss_object.factory
            in
            timed (fun () -> drive eng))
          (fun () ->
            let eng =
              Engine.create ~policy:Runtime.Bsp_rounds ~admission:true
                ~obs:(Obs.create ~metrics:(Metrics.create ()) ())
                ~seed:11 objects Moss_object.factory
            in
            timed (fun () -> drive eng))
          (fun () ->
            let metrics = Metrics.create () in
            last_metrics := metrics;
            let hub = Telemetry.Hub.create ~interval_s:1.0 metrics in
            frames := [];
            frame_bytes := 0;
            let obs = Obs.create ~metrics () in
            let submit_at = Hashtbl.create 256 in
            let eng =
              Engine.create ~policy:Runtime.Bsp_rounds ~admission:true ~obs
                ~on_top_complete:(fun u _ ->
                  match Hashtbl.find_opt submit_at (Txn_id.to_string u) with
                  | None -> ()
                  | Some t0 ->
                      Telemetry.Hub.observe_latency hub
                        (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)))
                ~seed:11 objects Moss_object.factory
            in
            let cut () =
              let f =
                Telemetry.Hub.cut hub ~eng ~alarms:(Engine.alarms eng)
                  ~conns:1 ~subscribers:1 ~now:0.0
              in
              frames := f :: !frames;
              frame_bytes :=
                !frame_bytes
                + String.length (Wire.encode_response (Wire.Telemetry f))
            in
            timed (fun () ->
                List.iteri
                  (fun i p ->
                    (match Engine.submit eng p with
                    | Ok txn ->
                        Hashtbl.replace submit_at (Txn_id.to_string txn)
                          (Unix.gettimeofday ())
                    | Error e -> failwith e);
                    ignore (Engine.step eng);
                    if (i + 1) mod 8 = 0 then cut ())
                  forest;
                (match Engine.drain eng with
                | `Quiescent -> ()
                | _ -> failwith "engine did not quiesce");
                cut ();
                ignore (Engine.finish eng)))
      in
      (* merge the windowed histograms back out of the frames *)
      let buckets = Array.make 64 0 in
      let count = ref 0 and maxv = ref 0 in
      List.iter
        (fun (f : Wire.telemetry) ->
          let h = f.Wire.w_latency in
          count := !count + h.Wire.h_count;
          if h.Wire.h_max > !maxv then maxv := h.Wire.h_max;
          List.iter
            (fun (i, n) -> buckets.(i) <- buckets.(i) + n)
            h.Wire.h_buckets)
        !frames;
      let p99_win =
        if !count = 0 then 0
        else begin
          let rank =
            Stdlib.max 1 (int_of_float (ceil (0.99 *. fi !count)))
          in
          let acc = ref 0 and res = ref !maxv in
          (try
             Array.iteri
               (fun i n ->
                 acc := !acc + n;
                 if n > 0 && !acc >= rank then begin
                   res := Metrics.bucket_upper i;
                   raise Exit
                 end)
               buckets
           with Exit -> ());
          Stdlib.min !res !maxv
        end
      in
      let cum =
        Metrics.histogram_stats
          (Metrics.histogram !last_metrics "served.latency_us")
      in
      Table.add_row t
        [
          Table.cell_i n_top;
          Table.cell_f t_bare;
          Table.cell_f t_plain;
          Table.cell_f t_telem;
          Table.cell_f ((t_telem -. t_plain) /. t_plain *. 100.0);
          Table.cell_i (List.length !frames);
          Table.cell_i !frame_bytes;
          Table.cell_i cum.Metrics.p99;
          Table.cell_i p99_win;
          Table.cell_i
            (abs (bucket_index_of p99_win - bucket_index_of cum.Metrics.p99));
        ])
    [ 8; 16; 32; 64 ];
  report t

(* ------------------------------------------------------------------ *)
(* E19: stage-tracing overhead.                                        *)

(* The e18 telemetry configuration run twice: [base_ms] is the PR-6
   serving baseline (metrics recorder + hub, completion hook observing
   e2e latencies), [traced_ms] adds everything the flight recorder
   costs per request: the engine's stage_times bookkeeping (a clock
   read per submit / scheduler-create / gate consultation /
   completion), seven per-stage hub observations, and seven ring
   records — the same per-request span count ntserved produces.  The
   same interleaved best-of-7 discipline as e18, and the same bar:
   [overhead_pct] (traced against base) must stay under 3% at the
   largest size.  [dump_ms] prices one full-ring JSONL dump (the
   anomaly path — off the per-request path entirely); [ring_spans] is
   what the dump carried. *)
let e19 () =
  let t =
    Table.create ~title:"E19: stage-tracing overhead (flight recorder)"
      ~columns:
        [ "n_top"; "base_ms"; "traced_ms"; "overhead_pct"; "ring_spans";
          "dump_ms"; "dump_bytes" ]
  in
  let time2 f g =
    let best = Array.make 2 infinity in
    let sample i k =
      let dt = k () in
      if dt < best.(i) then best.(i) <- dt
    in
    for _ = 1 to 7 do
      sample 0 f;
      sample 1 g
    done;
    (best.(0), best.(1))
  in
  let timed f =
    let t0 = Sys.time () in
    f ();
    (Sys.time () -. t0) *. 1000.0
  in
  List.iter
    (fun n_top ->
      let rng = Rng.create 13 in
      let forest, objects =
        Gen.registers rng { Gen.default with n_top; depth = 2; n_objects = 8 }
      in
      let ring = ref None and dump_ms = ref 0.0 and dump_bytes = ref 0 in
      let base () =
        let metrics = Metrics.create () in
        let hub = Telemetry.Hub.create ~interval_s:1.0 metrics in
        let obs = Obs.create ~metrics () in
        let submit_at = Hashtbl.create 256 in
        let eng =
          Engine.create ~policy:Runtime.Bsp_rounds ~admission:true ~obs
            ~on_top_complete:(fun u _ ->
              match Hashtbl.find_opt submit_at (Txn_id.to_string u) with
              | None -> ()
              | Some t0 ->
                  Telemetry.Hub.observe_latency hub
                    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)))
            ~seed:13 objects Moss_object.factory
        in
        timed (fun () ->
            List.iter
              (fun p ->
                (match Engine.submit eng p with
                | Ok txn ->
                    Hashtbl.replace submit_at (Txn_id.to_string txn)
                      (Unix.gettimeofday ())
                | Error e -> failwith e);
                ignore (Engine.step eng))
              forest;
            (match Engine.drain eng with
            | `Quiescent -> ()
            | _ -> failwith "engine did not quiesce");
            ignore (Engine.finish eng))
      in
      let traced () =
        let metrics = Metrics.create () in
        let hub = Telemetry.Hub.create ~interval_s:1.0 metrics in
        let obs = Obs.create ~metrics () in
        let submit_at = Hashtbl.create 256 in
        let recorder = Stage.Recorder.create ~capacity:4096 in
        ring := Some recorder;
        let bench_t0 = Unix.gettimeofday () in
        let clock () = Unix.gettimeofday () -. bench_t0 in
        let span stage t0 t1 =
          let sp =
            {
              Stage.sp_stage = stage;
              sp_req = Some "bench";
              sp_txn = None;
              sp_conn = 1;
              sp_t0 = t0;
              sp_t1 = t1;
            }
          in
          Telemetry.Hub.observe_stage hub stage (Stage.dur_us sp);
          Stage.Recorder.record recorder sp
        in
        let eng_cell = ref None in
        let eng =
          Engine.create ~policy:Runtime.Bsp_rounds ~admission:true ~obs ~clock
            ~on_top_complete:(fun u _ ->
              (match Hashtbl.find_opt submit_at (Txn_id.to_string u) with
              | None -> ()
              | Some t0 ->
                  Telemetry.Hub.observe_latency hub
                    (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)));
              match Option.get !eng_cell with
              | eng -> (
                  match Engine.stage_times eng u with
                  | None -> ()
                  | Some st ->
                      span "execute" st.Engine.st_start st.Engine.st_complete;
                      span "gate"
                        (st.Engine.st_complete -. st.Engine.st_gate)
                        st.Engine.st_complete))
            ~seed:13 objects Moss_object.factory
        in
        eng_cell := Some eng;
        timed (fun () ->
            List.iter
              (fun p ->
                (* the five spans ntserved records around a submission
                   (read/decode before, validate/admit at, reply after) *)
                let t_r0 = clock () in
                let t_r1 = clock () in
                span "read" t_r0 t_r1;
                span "decode" t_r1 (clock ());
                let t_v0 = clock () in
                (match Engine.submit eng p with
                | Ok txn ->
                    Hashtbl.replace submit_at (Txn_id.to_string txn)
                      (Unix.gettimeofday ())
                | Error e -> failwith e);
                let t_v1 = clock () in
                span "validate" t_v0 t_v1;
                span "admit" t_v0 t_v1;
                ignore (Engine.step eng);
                span "reply" t_v1 (clock ()))
              forest;
            (match Engine.drain eng with
            | `Quiescent -> ()
            | _ -> failwith "engine did not quiesce");
            ignore (Engine.finish eng))
      in
      let t_base, t_traced = time2 base traced in
      (match !ring with
      | None -> ()
      | Some recorder ->
          let t0 = Sys.time () in
          let oc_path = Filename.temp_file "e19" ".jsonl" in
          let oc = open_out oc_path in
          ignore (Stage.Recorder.dump_jsonl recorder ~reason:"bench" ~now:0.0 oc);
          close_out oc;
          dump_ms := (Sys.time () -. t0) *. 1000.0;
          dump_bytes := (Unix.stat oc_path).Unix.st_size;
          Sys.remove oc_path);
      Table.add_row t
        [
          Table.cell_i n_top;
          Table.cell_f t_base;
          Table.cell_f t_traced;
          Table.cell_f ((t_traced -. t_base) /. t_base *. 100.0);
          Table.cell_i
            (match !ring with
            | Some r -> Stage.Recorder.size r
            | None -> 0);
          Table.cell_f !dump_ms;
          Table.cell_i !dump_bytes;
        ])
    [ 8; 16; 32; 64 ];
  report t

(* The price of durability, and what group commit buys back.  Each
   size first serves its workload once through a buffer-sink writer
   following ntserved's logging discipline — a Submit record before
   every submission, coalesced Steps after every engine turn,
   buffered Outcomes behind them — so the record stream (mix, sizes,
   outcome placement) is exactly what a durable serve appends.  The
   timed subject is then the log path alone: appending that fixed
   stream to a real file under each sync policy.  [unbatched_ms] is
   [--fsync-batch 1] (a sync per record, the durability ceiling);
   [batched_ms] is [--fsync-batch 64].  Engine compute is identical
   across policies, so it is kept out of the measurement rather than
   letting it dilute the number group commit is meant to move.  The
   batch bounds the window of acknowledged-but-volatile records at 64,
   and the speedup at n_top = 64 is the headline number CI asserts
   (>= 5x on disk-backed storage).  Interleaved best-of-5: fsync
   times are noisy, batching's effect is not. *)
let e20 () =
  let t =
    Table.create ~title:"E20: WAL group commit (fsync batching)"
      ~columns:
        [ "n_top"; "records"; "kbytes"; "unbatched_ms"; "unbatched_syncs";
          "batched_ms"; "batched_syncs"; "speedup" ]
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  let write_all fd s =
    let rec go off =
      if off < String.length s then
        go (off + Unix.write_substring fd s off (String.length s - off))
    in
    go 0
  in
  List.iter
    (fun n_top ->
      let rng = Rng.create 29 in
      let forest, objects =
        Gen.registers rng { Gen.default with n_top; depth = 2; n_objects = 8 }
      in
      (* serve once through a buffer sink: the stream a durable serve
         of this workload appends, in order *)
      let stream =
        let buf = Buffer.create 4096 in
        let w =
          Wal.Writer.create ~base_seq:0 ~on_sync:ignore (Wal.buffer_sink buf)
        in
        let eng =
          Engine.create ~policy:Runtime.Bsp_rounds ~admission:true
            ~on_top_complete:(fun u outcome ->
              Wal.Writer.note_outcome w ~txn:u
                (match outcome with
                | `Committed -> Wal.Committed "bench"
                | `Aborted -> Wal.Aborted None))
            ~seed:29 objects Moss_object.factory
        in
        let last = ref (Engine.step_calls eng) in
        let cut () =
          let n = Engine.step_calls eng - !last in
          last := !last + n;
          Wal.Writer.log_steps w n
        in
        List.iter
          (fun p ->
            Wal.Writer.append w
              (Wal.Submit
                 {
                   req = None;
                   client = "bench";
                   program = Program_io.program_to_string p;
                 });
            (match Engine.submit eng p with
            | Ok _ -> ()
            | Error e -> failwith e);
            ignore (Engine.step eng);
            cut ())
          forest;
        (match Engine.drain eng with
        | `Quiescent -> ()
        | _ -> failwith "engine did not quiesce");
        cut ();
        Wal.Writer.flush w;
        ignore (Engine.finish eng);
        match Wal.scan ~magic:Wal.wal_magic (Buffer.contents buf) with
        | Ok sc when sc.Wal.sc_tail = Wal.Clean -> sc.Wal.sc_records
        | Ok _ -> failwith "recorded stream has a torn tail"
        | Error e -> failwith e
      in
      let records = ref 0 and bytes = ref 0 in
      (* append the fixed stream to a real file under one sync policy *)
      let run fsync_batch =
        let path = Filename.temp_file "e20" ".wal" in
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
        let sink =
          { Wal.write = write_all fd; sync = (fun () -> Unix.fsync fd) }
        in
        let w =
          Wal.Writer.create ~fsync_batch ~base_seq:0 ~on_sync:ignore sink
        in
        let ms =
          timed (fun () ->
              List.iter (Wal.Writer.append w) stream;
              Wal.Writer.flush w)
        in
        records := Wal.Writer.appended w;
        bytes := Wal.Writer.bytes_written w;
        let syncs = Wal.Writer.syncs w in
        Unix.close fd;
        Sys.remove path;
        (ms, syncs)
      in
      let best = [| (infinity, 0); (infinity, 0) |] in
      for _ = 1 to 5 do
        List.iteri
          (fun i batch ->
            let ms, syncs = run batch in
            if ms < fst best.(i) then best.(i) <- (ms, syncs))
          [ 1; 64 ]
      done;
      let (t1, s1), (t64, s64) = (best.(0), best.(1)) in
      Table.add_row t
        [
          Table.cell_i n_top;
          Table.cell_i !records;
          Table.cell_f (float_of_int !bytes /. 1024.0);
          Table.cell_f t1;
          Table.cell_i s1;
          Table.cell_f t64;
          Table.cell_i s64;
          Table.cell_f (t1 /. t64);
        ])
    [ 8; 16; 32; 64 ];
  report t

(* ------------------------------------------------------------------ *)
(* E21: detection rates of the weak-isolation adversaries, per oracle. *)

(* 200-run sweeps per backend x grammar.  Each completed run is judged
   independently by every oracle: the serial-correctness checker, the
   three SG cycle detectors (via [Check.sg_agreement]), and the ESSN
   refined criterion.  [essn_only] counts ESSN rejections whose SG is
   acyclic with zero monitor alarms — the anomaly class cycle alarms
   alone cannot see (stale snapshot reads whose edges all point one
   way).  Undo and mvts ride along as controls: every oracle must
   accept all 200 of their runs (the CI job fails on any verified-
   backend false positive). *)
let e21 () =
  let t =
    Table.create
      ~title:"E21: weak-isolation detection rates (200 runs, per oracle)"
      ~columns:
        [ "backend"; "grammar"; "runs"; "not_correct"; "sg_cyclic"; "alarmed";
          "essn_rej"; "essn_only" ]
  in
  List.iter
    (fun (backend, grammar) ->
      let master = Rng.create 97 in
      let n = ref 0 and not_correct = ref 0 and cyclic = ref 0 in
      let alarmed = ref 0 and essn_rej = ref 0 and essn_only = ref 0 in
      for _ = 1 to 200 do
        let rng = Rng.split master in
        let sc = Check.gen_scenario ?grammar backend rng in
        let o = Check.run_scenario backend sc in
        if not o.Check.truncated then begin
          incr n;
          let schema =
            match backend with
            | Check.Replication ->
                let plan =
                  Replication.replicate Check.replication_config
                    ~objects:(List.map fst sc.Check.objects)
                    sc.Check.forest
                in
                plan.Replication.physical_schema
            | _ -> Check.schema_of_scenario sc
          in
          if not (Checker.serially_correct schema o.Check.trace) then
            incr not_correct;
          let a = Check.sg_agreement schema o.Check.trace in
          if not a.Check.checker_acyclic then incr cyclic;
          if a.Check.cycle_alarms > 0 then incr alarmed;
          let v = Essn.check schema o.Check.trace in
          if not v.Essn.essn_ok then begin
            incr essn_rej;
            if a.Check.checker_acyclic && a.Check.cycle_alarms = 0 then
              incr essn_only
          end
        end
      done;
      Table.add_row t
        [
          Check.backend_name backend;
          (match grammar with
          | Some g -> Check.grammar_name g
          | None -> "default");
          Table.cell_i !n;
          Table.cell_i !not_correct;
          Table.cell_i !cyclic;
          Table.cell_i !alarmed;
          Table.cell_i !essn_rej;
          Table.cell_i !essn_only;
        ])
    [
      (Check.Moss, Some Check.Smallbank);
      (Check.Commlock, Some Check.Smallbank);
      (Check.Undo, Some Check.Smallbank);
      (Check.Replication, Some Check.Smallbank);
      (Check.Mvts, Some Check.Smallbank);
      (Check.Causal_only, Some Check.Smallbank);
      (Check.Prefix_consistent, Some Check.Smallbank);
      (Check.Snapshot_read, Some Check.Smallbank);
      (Check.Causal_only, None);
      (Check.Prefix_consistent, None);
      (Check.Snapshot_read, None);
    ];
  report t

(* ------------------------------------------------------------------ *)
(* E22: sharded serving speedup on a shard-local smallbank.            *)

(* The live [Shard_service] — one engine per domain — against itself at
   one shard, on a workload built to be embarrassingly parallel:
   accounts are grouped by the 4-shard partition's own placement, and
   every transfer draws all its accounts from one group, so the router
   classifies every program single-shard and the spine's cross-shard
   gate never runs.  What is measured is therefore the parallelism of
   the engines themselves plus the router/mailbox dispatch overhead.
   [speedup] is wall-clock (not CPU) ratio of the 1-shard run to the
   4-shard run, best of two runs each; [cores] is the runtime's
   recommended domain count — on a single-core box the 4-shard row
   degrades to time-slicing and the speedup column reports overhead,
   which is why the acceptance bar (>= 2x at 4 shards) is gated on
   [cores >= 4] in CI. *)
let e22 () =
  let t =
    Table.create ~title:"E22: sharded serving speedup (shard-local smallbank)"
      ~columns:
        [ "shards"; "cores"; "parallel"; "n_prog"; "cross"; "wall_ms";
          "txn_per_s"; "speedup" ]
  in
  let n_objects = 64 and n_prog = 200 and shards = 4 in
  let objects =
    List.init n_objects (fun i -> (Obj_id.indexed "acct" i, Register.make ()))
  in
  (* group accounts by their 4-shard home (same default key as the
     service's own partition, so the grouping below is its placement) *)
  let part = Partition.create ~shards objects in
  let groups = Array.make shards [||] in
  for s = 0 to shards - 1 do
    groups.(s) <-
      Array.of_list
        (List.filter_map
           (fun (x, _) ->
             if Partition.shard_of part x = s then Some x else None)
           objects)
  done;
  let rng = Rng.create 7 in
  let progs =
    List.init n_prog (fun i ->
        let g = groups.(i mod shards) in
        let pick () = g.(Rng.int rng (Array.length g)) in
        let a = pick () and b = pick () and c = pick () and d = pick () in
        Program.seq
          [
            Program.par
              [
                Program.access a Datatype.Read;
                Program.access b Datatype.Read;
              ];
            Program.par
              [
                Program.access a (Datatype.Write (Value.Int i));
                Program.access b (Datatype.Write (Value.Int (i + 1)));
              ];
            Program.par
              [
                Program.access c Datatype.Read;
                Program.access d Datatype.Read;
              ];
          ])
  in
  (* Open loop with a bounded in-flight window: an unbounded flood
     would park thousands of live transactions in each engine and
     measure the scheduler's occupancy pathology instead of the
     dispatch path. *)
  let run_once n =
    let window = 16 * n in
    let svc =
      Shard_service.start ~shards:n ~seed:11 objects
        (Check.factory_of Check.Undo)
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun p ->
        while Shard_service.pending svc >= window do
          Unix.sleepf 0.0001
        done;
        match Shard_service.submit svc p with
        | Ok _ -> ()
        | Error e -> failwith e)
      progs;
    while Shard_service.pending svc > 0 do
      Unix.sleepf 0.0002
    done;
    let wall = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let cross = Shard_router.cross_count (Shard_service.router svc) in
    Shard_service.stop svc;
    let r, _, _ = Shard_service.finish svc in
    if r.Runtime.committed_top + r.Runtime.aborted_top <> n_prog then
      failwith "e22: not all submissions completed";
    (wall, cross)
  in
  let best n =
    let w1, c1 = run_once n in
    let w2, _ = run_once n in
    (Float.min w1 w2, c1)
  in
  let base, _ = best 1 in
  let multi, cross = best shards in
  if cross <> 0 then failwith "e22: workload was meant to be shard-local";
  let cores = Domain_compat.recommended_worker_count () in
  let row n wall speedup =
    Table.add_row t
      [
        Table.cell_i n;
        Table.cell_i cores;
        string_of_bool Domain_compat.parallelism_available;
        Table.cell_i n_prog;
        Table.cell_i cross;
        Table.cell_f wall;
        Table.cell_f (fi n_prog /. (wall /. 1000.0));
        Table.cell_f speedup;
      ]
  in
  row 1 base 1.0;
  row shards multi (base /. multi);
  report t

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20);
    ("e21", e21); ("e22", e22);
    ("obs", obs);
    ("micro", micro);
  ]

let () =
  let json_out = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse acc rest
    | [ "--json" ] ->
        Format.eprintf "--json requires a file argument@.";
        exit 2
    | name :: rest -> parse (name :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst all
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f ->
          f ();
          print_newline ()
      | None ->
          Format.eprintf "unknown experiment %S (have: %s)@." name
            (String.concat ", " (List.map fst all));
          exit 2)
    requested;
  match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Obs_json.output oc (Obs_json.Arr (List.rev_map Table.to_json !emitted));
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %d table(s) to %s@." (List.length !emitted) path
